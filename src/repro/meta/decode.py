"""Decoding meta-tuples back into permit-statement clauses.

The authorization process ends by describing the delivered portions to
the user: "the following view definition will inform the user that
permission exists only for SPONSOR = Acme: permit (NUMBER, SPONSOR)
where SPONSOR = Acme".  This module derives those clauses from a mask
meta-tuple and its constraint store.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.meta.metatuple import MetaTuple
from repro.predicates.store import ConstraintStore


def permit_clauses(
    labels: Sequence[str],
    meta: MetaTuple,
    store: ConstraintStore,
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Derive (visible columns, where clauses) from a mask row.

    * starred cells name the permitted columns;
    * constant cells contribute ``COL = value`` clauses;
    * a variable occurring in several cells contributes equality
      clauses between those columns;
    * a variable's interval constraints contribute comparison clauses,
      phrased over the first column carrying the variable;
    * variable-to-variable relations with both variables in the row
      contribute ``COL op COL`` clauses.
    """
    columns = tuple(
        labels[i] for i, cell in enumerate(meta.cells) if cell.starred
    )

    clauses: List[str] = []
    var_columns: Dict[str, List[str]] = {}
    for i, cell in enumerate(meta.cells):
        if cell.is_constant:
            clauses.append(f"{labels[i]} = {_fmt(cell.const_value)}")
        name = cell.var_name
        if name is not None:
            var_columns.setdefault(name, []).append(labels[i])

    for name, cols in var_columns.items():
        first = cols[0]
        for other in cols[1:]:
            clauses.append(f"{first} = {other}")
        clauses.extend(store.describe_var(name, first))

    for relation in store.relations():
        if relation.left in var_columns and relation.right in var_columns:
            clauses.append(
                f"{var_columns[relation.left][0]} {relation.op} "
                f"{var_columns[relation.right][0]}"
            )

    return columns, tuple(clauses)


def _fmt(value: object) -> str:
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:,}"
    return str(value)
