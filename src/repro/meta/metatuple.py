"""Meta-tuples: single-relation subview definitions (Section 3).

"Each individual meta-tuple may be regarded as defining a subview of
the corresponding relation.  The constants and variables specify the
selection condition, and the *'s specify the projected attributes."

A :class:`MetaTuple` additionally carries:

* ``views`` — the names of the views it belongs to.  Catalog tuples
  belong to exactly one view; the self-join refinement produces
  combined tuples belonging to several (the paper's ``EST, SAE`` rows
  in Example 3).
* ``provenance`` — the identities of the *original* catalog meta-tuples
  it descends from.  Provenance drives the dangling-reference pruning
  of Section 4.1: a variable is resolved within a product row only when
  every original meta-tuple that defines it is present in the row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.calculus.normalize import VarContent
from repro.meta.cell import MetaCell
from repro.predicates.store import ConstraintStore

#: Identity of an original catalog meta-tuple: (view name, ordinal).
TupleId = Tuple[str, int]


@dataclass(frozen=True)
class MetaTuple:
    """An immutable meta-tuple."""

    views: FrozenSet[str]
    cells: Tuple[MetaCell, ...]
    provenance: FrozenSet[TupleId] = field(default_factory=frozenset)

    # -- basic accessors --------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.cells)

    def variables(self) -> Tuple[str, ...]:
        """Variables in cell order, first occurrence only."""
        seen: Dict[str, None] = {}
        for cell in self.cells:
            name = cell.var_name
            if name is not None:
                seen.setdefault(name)
        return tuple(seen)

    def var_positions(self, var: str) -> Tuple[int, ...]:
        """Positions of all cells holding variable ``var``."""
        return tuple(
            i for i, cell in enumerate(self.cells) if cell.var_name == var
        )

    def starred_positions(self) -> Tuple[int, ...]:
        return tuple(i for i, c in enumerate(self.cells) if c.starred)

    @property
    def has_stars(self) -> bool:
        return any(c.starred for c in self.cells)

    @property
    def is_all_blank(self) -> bool:
        return all(c.is_blank for c in self.cells)

    # -- functional updates ------------------------------------------------

    def replace_cell(self, index: int, cell: MetaCell) -> "MetaTuple":
        cells = list(self.cells)
        cells[index] = cell
        return MetaTuple(self.views, tuple(cells), self.provenance)

    def replace_cells(self, updates: Dict[int, MetaCell]) -> "MetaTuple":
        cells = list(self.cells)
        for index, cell in updates.items():
            cells[index] = cell
        return MetaTuple(self.views, tuple(cells), self.provenance)

    def substitute_var(self, var: str, replacement: MetaCell
                       ) -> "MetaTuple":
        """Replace every occurrence of ``var`` with ``replacement``'s
        content, preserving each cell's own star flag."""
        cells = tuple(
            cell.with_content(replacement.content)
            if cell.var_name == var else cell
            for cell in self.cells
        )
        return MetaTuple(self.views, cells, self.provenance)

    def rename_var(self, old: str, new: str) -> "MetaTuple":
        cells = tuple(
            MetaCell(VarContent(new), cell.starred)
            if cell.var_name == old else cell
            for cell in self.cells
        )
        return MetaTuple(self.views, cells, self.provenance)

    def project(self, keep: Sequence[int]) -> "MetaTuple":
        """Keep only the cells at positions ``keep`` (in that order).

        This is mechanical column removal; Definition 3's blankness
        test lives in the meta-projection operator.
        """
        return MetaTuple(
            self.views,
            tuple(self.cells[i] for i in keep),
            self.provenance,
        )

    def concat(self, other: "MetaTuple") -> "MetaTuple":
        """Definition 1: concatenation of two meta-tuples."""
        return MetaTuple(
            self.views | other.views,
            self.cells + other.cells,
            self.provenance | other.provenance,
        )

    # -- rendering -----------------------------------------------------------

    def render_cells(self, blank_glyph: str = "") -> Tuple[str, ...]:
        return tuple(cell.render(blank_glyph) for cell in self.cells)

    def view_label(self) -> str:
        """Display label: ``ELP`` or ``EST, SAE`` for combined tuples."""
        return ", ".join(sorted(self.views))

    def __str__(self) -> str:
        inner = ", ".join(str(c) for c in self.cells)
        return f"({inner})"


def blank_tuple(arity: int) -> MetaTuple:
    """An all-blank, unstarred meta-tuple (the padding of Section 4.2)."""
    return MetaTuple(
        views=frozenset(),
        cells=tuple(MetaCell.blank() for _ in range(arity)),
        provenance=frozenset(),
    )


def canonical_key(
    meta: MetaTuple,
    store: Optional[ConstraintStore] = None,
    include_provenance: bool = False,
) -> Tuple:
    """A structural key identifying a meta-tuple up to variable renaming.

    Variables are numbered by first appearance; each variable's interval
    and (renamed) relations from ``store`` are folded in, so two rows
    that differ only in variable names — the paper's "replications" —
    share a key and can be removed.  View names are always part of the
    key; set ``include_provenance`` for the stricter key used *before*
    the dangling-reference pruning, where cell-identical rows with
    different provenance must stay distinct (they prune differently —
    Example 3's two ``EST, SAE`` combinations are the canonical case).
    """
    numbering: Dict[str, int] = {}
    cell_parts = []
    for cell in meta.cells:
        var = cell.var_name
        if var is not None:
            index = numbering.setdefault(var, len(numbering))
            cell_parts.append(("v", index, cell.starred))
        elif cell.is_constant:
            cell_parts.append(("c", cell.const_value, cell.starred))
        else:
            cell_parts.append(("b", None, cell.starred))

    constraint_parts: Tuple = ()
    if store is not None:
        mapping = {var: f"@{i}" for var, i in numbering.items()}
        local = store.restrict_closure(set(numbering)).rename(mapping)
        intervals = tuple(sorted(
            (name, str(local.interval_for(name))) for name in mapping.values()
        ))
        relations = tuple(str(r) for r in local.relations())
        constraint_parts = (intervals, relations)

    provenance_part: Tuple = ()
    if include_provenance:
        provenance_part = tuple(sorted(meta.provenance))

    return (
        tuple(sorted(meta.views)),
        tuple(cell_parts),
        constraint_parts,
        provenance_part,
    )


def dedupe(rows: Iterable[Tuple[MetaTuple, ConstraintStore]]
           ) -> Tuple[Tuple[MetaTuple, ConstraintStore], ...]:
    """Remove replicated (tuple, store) rows, keeping first occurrences."""
    seen = set()
    out = []
    for meta, store in rows:
        key = canonical_key(meta, store)
        if key not in seen:
            seen.add(key)
            out.append((meta, store))
    return tuple(out)
