"""Encoding views into meta-tuples (the procedure of Section 3).

Given a normalized view, each relation occurrence yields one meta-tuple
for the corresponding meta-relation: head positions are starred,
equality-substituted constants become constant components,
multi-occurrence variables stay as variables, and single-occurrence
variables are blanks.  Non-equality comparisons populate the
COMPARISON store.

Variables are renamed from the view-local ``x1, x2, ...`` to
catalog-global names so that meta-tuples of different views never share
a variable accidentally while meta-tuples of the same view share theirs
by construction — the property the meta-product relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Tuple

from repro.algebra.schema import DatabaseSchema
from repro.calculus.ast import ViewDefinition
from repro.calculus.normalize import (
    ConstContent,
    NormalizedView,
    VarContent,
    normalize_view,
)
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple, TupleId
from repro.predicates.store import ConstraintStore


@dataclass(frozen=True)
class EncodedView:
    """A view together with its meta-relation representation.

    Attributes:
        definition: the original surface AST.
        normalized: the normalization the encoding was derived from.
        tuples: one ``(relation name, meta-tuple)`` pair per relation
            occurrence, in occurrence order.  The i-th pair's meta-tuple
            has provenance ``{(name, i)}``.
        store: COMPARISON constraints over the (renamed) view variables.
        defining_tuples: for every variable, the ids of the meta-tuples
            whose cells mention it — the ``D(x)`` sets of the
            dangling-reference pruning.
    """

    definition: ViewDefinition
    normalized: NormalizedView
    tuples: Tuple[Tuple[str, MetaTuple], ...]
    store: ConstraintStore
    defining_tuples: Dict[str, FrozenSet[TupleId]]

    @property
    def name(self) -> str:
        return self.definition.name

    def relation_names(self) -> FrozenSet[str]:
        return frozenset(rel for rel, _ in self.tuples)

    def variables(self) -> Tuple[str, ...]:
        return tuple(self.defining_tuples)


def encode_view(
    view: ViewDefinition,
    schema: DatabaseSchema,
    fresh_var: Callable[[], str],
) -> EncodedView:
    """Encode ``view`` into meta-tuples.

    ``fresh_var`` supplies catalog-global variable names (the paper
    numbers them consecutively across views: Figure 1 uses x1..x3 for
    ELP and x4 for EST).
    """
    normalized = normalize_view(view, schema)

    renaming: Dict[str, str] = {}
    for var in normalized.variables():
        renaming[var] = fresh_var()

    tuples: List[Tuple[str, MetaTuple]] = []
    mentions: Dict[str, List[TupleId]] = {}

    position = 0
    for ordinal, occ in enumerate(normalized.occurrences):
        width = schema.get(occ.relation).arity
        cells: List[MetaCell] = []
        for cell in normalized.cells[position:position + width]:
            content = cell.content
            if isinstance(content, VarContent):
                name = renaming[content.var]
                cells.append(MetaCell.variable(name, cell.starred))
                tuple_id: TupleId = (view.name, ordinal)
                if tuple_id not in mentions.setdefault(name, []):
                    mentions[name].append(tuple_id)
            elif isinstance(content, ConstContent):
                cells.append(MetaCell.constant(content.value, cell.starred))
            else:
                cells.append(MetaCell.blank(cell.starred))
        position += width
        meta = MetaTuple(
            views=frozenset([view.name]),
            cells=tuple(cells),
            provenance=frozenset([(view.name, ordinal)]),
        )
        tuples.append((occ.relation, meta))

    store = normalized.store.rename(renaming)
    defining = {
        var: frozenset(ids) for var, ids in mentions.items()
    }
    # Variables constrained in the store but absent from all cells can
    # not occur for encoded views (normalization only names variables
    # that appear in cells), but guard for robustness.
    for var in store.mentioned_vars():
        defining.setdefault(var, frozenset())

    return EncodedView(
        definition=view,
        normalized=normalized,
        tuples=tuple(tuples),
        store=store,
        defining_tuples=defining,
    )
