"""S5 — meta-relations: storing access permissions (Section 3).

Meta-cells (blank / constant / variable, starred), meta-tuples with
provenance, the view encoder, the permit-clause decoder, and the
permission catalog holding the meta-relations plus the COMPARISON and
PERMISSION auxiliaries.
"""

from repro.meta.catalog import PermissionCatalog
from repro.meta.cell import BLANK_GLYPH, MetaCell
from repro.meta.decode import permit_clauses
from repro.meta.encode import EncodedView, encode_view
from repro.meta.metatuple import (
    MetaTuple,
    TupleId,
    blank_tuple,
    canonical_key,
    dedupe,
)

__all__ = [
    "BLANK_GLYPH",
    "EncodedView",
    "MetaCell",
    "MetaTuple",
    "PermissionCatalog",
    "TupleId",
    "blank_tuple",
    "canonical_key",
    "dedupe",
    "encode_view",
    "permit_clauses",
]
