"""The permission catalog: meta-relations, COMPARISON and PERMISSION.

Section 3 extends the database with one meta-relation R' per relation
R, plus two auxiliary relations::

    COMPARISON = (VIEW, X, COMPARE, Y)
    PERMISSION = (USER, VIEW)

:class:`PermissionCatalog` is that extension.  It owns the view
definitions (encoded as meta-tuples), the global constraint store
(COMPARISON), and the user grants (PERMISSION), and serves the pruning
queries the authorization process needs: "pruned to include only tuples
of views that the user is permitted to access, and that are defined in
these relations in their entirety".
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.algebra.schema import DatabaseSchema
from repro.calculus.ast import ViewDefinition
from repro.errors import DuplicateViewError, UnknownViewError
from repro.lang.parser import parse_view
from repro.meta.encode import EncodedView, encode_view
from repro.meta.metatuple import MetaTuple, TupleId
from repro.predicates.store import ConstraintStore


class PermissionCatalog:
    """Views, their meta-tuple encodings, and user grants.

    Mutators (``define_view`` / ``drop_view`` / ``permit`` /
    ``revoke``) are serialized by an internal lock so concurrent
    grant/revoke traffic from a serving layer cannot lose version
    bumps — the version counters are what keep shared derivation
    caches honest.  Readers are lock-free: they take GIL-atomic
    snapshots, and a reader that races a mutation simply observes
    either the before or the after state, both of which are guarded by
    the token it captured (see :meth:`cache_token`).

    Every mutation writes its state change *before* bumping the
    version counters.  That ordering is load-bearing: a reader that
    captures the post-mutation token is then guaranteed to see the
    post-mutation grants, so nothing stale can ever be cached under a
    live token — in-flight derivations that started under the old
    state store under the old token and are invalidated on their next
    lookup.
    """

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._views: Dict[str, EncodedView] = {}
        self._grants: Dict[str, List[str]] = {}  # user -> view names, in grant order
        self._var_counter = 0
        self._mutate_lock = threading.RLock()
        #: Monotonic version, bumped on every mutation (kept for
        #: backward compatibility and coarse observers).
        self.version = 0
        #: Bumped only when the view definitions change (``view`` /
        #: ``drop``).  Definition changes invalidate every user's
        #: cached derivations and self-join closures.
        self.definitions_version = 0
        #: Per-user grant counters: a ``permit``/``revoke`` bumps only
        #: the affected user, so caches scoped by
        #: :meth:`cache_token` survive other users' mutations.
        self._grant_versions: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # view definition
    # ------------------------------------------------------------------

    def _fresh_var(self) -> str:
        self._var_counter += 1
        return f"x{self._var_counter}"

    def define_view(self, view: Union[ViewDefinition, str]) -> EncodedView:
        """Define (and encode) a view.

        Accepts either an AST or the surface-syntax text of a ``view``
        statement.

        Raises:
            DuplicateViewError: when the name is taken.
        """
        if isinstance(view, str):
            view = parse_view(view)
        with self._mutate_lock:
            if view.name in self._views:
                raise DuplicateViewError(view.name)
            encoded = encode_view(view, self.schema, self._fresh_var)
            self._views[view.name] = encoded
            self.version += 1
            self.definitions_version += 1
        return encoded

    def drop_view(self, name: str) -> None:
        """Remove a view and every grant that references it."""
        with self._mutate_lock:
            if name not in self._views:
                raise UnknownViewError(name)
            del self._views[name]
            for user in list(self._grants):
                if name in self._grants[user]:
                    self._bump_grants(user)
                remaining = [
                    v for v in self._grants[user] if v != name
                ]
                if remaining:
                    self._grants[user] = remaining
                else:
                    del self._grants[user]
            self.version += 1
            self.definitions_version += 1

    def view(self, name: str) -> EncodedView:
        try:
            return self._views[name]
        except KeyError:
            raise UnknownViewError(name) from None

    def view_names(self) -> Tuple[str, ...]:
        return tuple(self._views)

    def has_view(self, name: str) -> bool:
        return name in self._views

    # ------------------------------------------------------------------
    # PERMISSION
    # ------------------------------------------------------------------

    def permit(self, view_name: str, user: str) -> None:
        """Grant ``user`` access to ``view_name`` (idempotent)."""
        with self._mutate_lock:
            if view_name not in self._views:
                raise UnknownViewError(view_name)
            granted = self._grants.get(user, [])
            if view_name not in granted:
                # Replace the list wholesale so lock-free readers see
                # either the before or the after state, never a
                # half-applied mutation.
                self._grants[user] = granted + [view_name]
                self.version += 1
                self._bump_grants(user)

    def revoke(self, view_name: str, user: str) -> None:
        """Withdraw a grant (no-op when absent)."""
        with self._mutate_lock:
            granted = self._grants.get(user, [])
            if view_name in granted:
                remaining = [v for v in granted if v != view_name]
                if remaining:
                    self._grants[user] = remaining
                else:
                    del self._grants[user]
                self.version += 1
                self._bump_grants(user)

    def views_of(self, user: str) -> Tuple[str, ...]:
        """Views granted to ``user``, in grant order."""
        return tuple(self._grants.get(user, ()))

    def _bump_grants(self, user: str) -> None:
        self._grant_versions[user] = self._grant_versions.get(user, 0) + 1

    def grants_version(self, user: str) -> int:
        """Monotonic counter of ``user``'s grant mutations."""
        return self._grant_versions.get(user, 0)

    def cache_token(self, user: str) -> Tuple[int, int]:
        """The catalog state relevant to ``user``'s cached derivations.

        ``(definitions_version, grants_version(user))`` — view
        definition changes invalidate globally, grant changes only for
        the user they touch.  Engines compare this token to decide
        whether a cached self-join closure or mask derivation may be
        served (see :mod:`repro.core.cache`).
        """
        return (self.definitions_version, self.grants_version(user))

    def users(self) -> Tuple[str, ...]:
        return tuple(self._grants)

    def is_permitted(self, user: str, view_name: str) -> bool:
        return view_name in self._grants.get(user, ())

    # ------------------------------------------------------------------
    # pruning services for the authorization process
    # ------------------------------------------------------------------

    def admissible_views(self, user: str,
                         relations: Iterable[str]) -> Tuple[str, ...]:
        """Views permitted to ``user`` and defined entirely within
        ``relations`` (the stage-one pruning of Section 5's examples)."""
        universe = frozenset(relations)
        return tuple(
            name for name in self.views_of(user)
            if self.view(name).relation_names() <= universe
        )

    def tuples_for(self, relation: str,
                   view_names: Iterable[str]) -> Tuple[MetaTuple, ...]:
        """Meta-tuples of the given views stored in meta-relation
        ``relation``', in view/ordinal order."""
        out: List[MetaTuple] = []
        for name in view_names:
            for rel, meta in self.view(name).tuples:
                if rel == relation:
                    out.append(meta)
        return tuple(out)

    def store_for(self, view_names: Iterable[str]) -> ConstraintStore:
        """The COMPARISON constraints of the given views, merged."""
        store = ConstraintStore.empty()
        for name in view_names:
            store = store.merge(self.view(name).store)
        return store

    def defining_tuples(self, view_names: Iterable[str]
                        ) -> Dict[str, FrozenSet[TupleId]]:
        """The D(x) map of every variable of the given views."""
        out: Dict[str, FrozenSet[TupleId]] = {}
        for name in view_names:
            out.update(self.view(name).defining_tuples)
        return out

    # ------------------------------------------------------------------
    # display (the Figure 1 tables)
    # ------------------------------------------------------------------

    def meta_relation_rows(self, relation: str,
                           view_names: Optional[Iterable[str]] = None
                           ) -> Tuple[Tuple[str, MetaTuple], ...]:
        """(VIEW, meta-tuple) rows of meta-relation ``relation``'.

        Restricted to ``view_names`` when given; definition order
        otherwise, matching Figure 1.
        """
        names = tuple(view_names) if view_names is not None \
            else self.view_names()
        rows: List[Tuple[str, MetaTuple]] = []
        for name in names:
            for rel, meta in self.view(name).tuples:
                if rel == relation:
                    rows.append((name, meta))
        return tuple(rows)

    def comparison_rows(self, view_names: Optional[Iterable[str]] = None
                        ) -> Tuple[Tuple[str, str, str, str], ...]:
        """(VIEW, X, COMPARE, Y) display rows of the COMPARISON relation."""
        names = tuple(view_names) if view_names is not None \
            else self.view_names()
        rows: List[Tuple[str, str, str, str]] = []
        for name in names:
            store = self.view(name).store
            for var in sorted(store.mentioned_vars(),
                              key=_variable_sort_key):
                for clause in store.interval_for(var).describe(var):
                    subject, op, bound = clause.split(" ", 2)
                    rows.append((name, subject, op, bound))
            for relation in store.relations():
                rows.append((name, relation.left, str(relation.op),
                             relation.right))
        return tuple(rows)

    def permission_rows(self) -> Tuple[Tuple[str, str], ...]:
        """(USER, VIEW) display rows of the PERMISSION relation."""
        rows: List[Tuple[str, str]] = []
        for user, views in self._grants.items():
            for view_name in views:
                rows.append((user, view_name))
        return tuple(rows)


def _variable_sort_key(var: str) -> Tuple[int, str]:
    """Sort x2 before x10 while tolerating non-numeric names."""
    if var.startswith("x") and var[1:].isdigit():
        return (int(var[1:]), "")
    return (1 << 30, var)
