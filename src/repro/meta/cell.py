"""Meta-cells: the components of meta-tuples (Section 3).

After the paper's rewriting, "each component of the modified subformula
is either a constant (a value), or a variable, or a blank, and each may
be suffixed by *".  :class:`MetaCell` is exactly that: a content (the
shared content model of :mod:`repro.calculus.normalize`) plus the star
flag marking projection attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algebra.types import Value
from repro.calculus.normalize import (
    BLANK,
    BlankContent,
    CellContent,
    ConstContent,
    VarContent,
)

#: The glyph the paper uses for blanks.
BLANK_GLYPH = "⊔"  # ⊔


@dataclass(frozen=True)
class MetaCell:
    """One component of a meta-tuple: blank/constant/variable, starred?"""

    content: CellContent
    starred: bool

    # -- constructors ---------------------------------------------------

    @staticmethod
    def blank(starred: bool = False) -> "MetaCell":
        return MetaCell(BLANK, starred)

    @staticmethod
    def constant(value: Value, starred: bool = False) -> "MetaCell":
        return MetaCell(ConstContent(value), starred)

    @staticmethod
    def variable(name: str, starred: bool = False) -> "MetaCell":
        return MetaCell(VarContent(name), starred)

    # -- predicates -----------------------------------------------------

    @property
    def is_blank(self) -> bool:
        return isinstance(self.content, BlankContent)

    @property
    def is_constant(self) -> bool:
        return isinstance(self.content, ConstContent)

    @property
    def is_variable(self) -> bool:
        return isinstance(self.content, VarContent)

    @property
    def var_name(self) -> Optional[str]:
        """The variable name, or None for blank/constant cells."""
        if isinstance(self.content, VarContent):
            return self.content.var
        return None

    @property
    def const_value(self) -> Optional[Value]:
        """The constant value, or None for blank/variable cells."""
        if isinstance(self.content, ConstContent):
            return self.content.value
        return None

    # -- functional updates ----------------------------------------------

    def cleared(self) -> "MetaCell":
        """The four-case CLEAR outcome: blank, star preserved.

        "the corresponding field is cleared (i.e., the variable or the
        constant is replaced by blank)" — Section 4.2.
        """
        return MetaCell(BLANK, self.starred)

    def with_content(self, content: CellContent) -> "MetaCell":
        return MetaCell(content, self.starred)

    def with_star(self, starred: bool = True) -> "MetaCell":
        return MetaCell(self.content, starred)

    # -- rendering --------------------------------------------------------

    def render(self, blank_glyph: str = "") -> str:
        """Paper-style rendering: ``*``, ``Acme*``, ``x1``, blank."""
        if self.is_blank:
            body = blank_glyph
        elif self.is_constant:
            value = self.const_value
            if isinstance(value, int) and abs(value) >= 10_000:
                body = f"{value:,}"
            else:
                body = str(value)
        else:
            body = self.var_name or ""
        if self.starred:
            return body + "*"
        return body

    def __str__(self) -> str:
        return self.render(BLANK_GLYPH)
