"""repro — Motro's view-based access authorization model (ICDE 1989).

A complete implementation of "An Access Authorization Model for
Relational Databases Based on Algebraic Manipulation of View
Definitions": permissions are conjunctive views, queries address the
actual relations, and the engine infers — by running the query's plan
over meta-relations — the subviews of each answer the user may see,
delivering a masked answer plus inferred ``permit`` statements.

Quickstart::

    from repro import AuthorizationEngine, PermissionCatalog
    from repro.workloads import build_paper_database

    database = build_paper_database()
    catalog = PermissionCatalog(database.schema)
    catalog.define_view(
        "view PSA (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
        "where PROJECT.SPONSOR = Acme"
    )
    catalog.permit("PSA", "brown")

    engine = AuthorizationEngine(database, catalog)
    answer = engine.authorize(
        "brown",
        "retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
        "where PROJECT.BUDGET >= 250,000",
    )
    print(answer.render())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced figure, table and example.
"""

from repro.algebra import (
    Attribute,
    Database,
    DatabaseSchema,
    INTEGER,
    REAL,
    Relation,
    RelationSchema,
    STRING,
    build_database,
    make_schema,
)
from repro.backends import (
    ExecutionBackend,
    PythonBackend,
    SQLiteBackend,
    make_backend,
)
from repro.calculus import (
    AttrRef,
    Condition,
    ConstTerm,
    Query,
    ViewDefinition,
)
from repro.config import BASE_MODEL_CONFIG, DEFAULT_CONFIG, EngineConfig
from repro.core import (
    AuthorizationEngine,
    AuthorizedAnswer,
    FrontEnd,
    InferredPermit,
    MASKED,
    Mask,
    Session,
)
from repro.errors import (
    AuthorizationError,
    ParseError,
    ReproError,
    SafetyError,
    SchemaError,
)
from repro.lang import (
    PermitCommand,
    RevokeCommand,
    format_statement,
    parse_program,
    parse_query,
    parse_statement,
    parse_view,
)
from repro.meta import MetaCell, MetaTuple, PermissionCatalog
from repro.predicates import Comparator

__version__ = "1.0.0"

__all__ = [
    "AttrRef",
    "Attribute",
    "AuthorizationEngine",
    "AuthorizationError",
    "AuthorizedAnswer",
    "BASE_MODEL_CONFIG",
    "Comparator",
    "Condition",
    "ConstTerm",
    "DEFAULT_CONFIG",
    "Database",
    "DatabaseSchema",
    "EngineConfig",
    "ExecutionBackend",
    "FrontEnd",
    "INTEGER",
    "InferredPermit",
    "MASKED",
    "Mask",
    "MetaCell",
    "MetaTuple",
    "ParseError",
    "PermissionCatalog",
    "PermitCommand",
    "PythonBackend",
    "Query",
    "REAL",
    "Relation",
    "RelationSchema",
    "ReproError",
    "RevokeCommand",
    "SQLiteBackend",
    "STRING",
    "SafetyError",
    "SchemaError",
    "Session",
    "ViewDefinition",
    "build_database",
    "format_statement",
    "make_backend",
    "make_schema",
    "parse_program",
    "parse_query",
    "parse_statement",
    "parse_view",
]
