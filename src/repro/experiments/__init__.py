"""S10 — the experiment harness.

One module per paper artifact (Figure 1, Figure 2, Examples 1-3, the
Section 4.2 case analysis, the Section 1 baseline comparisons, the
ablations, coverage and scaling), each producing an
:class:`~repro.experiments.result.ExperimentResult` with the paper's
tables and explicit paper-vs-measured checks.  Run them all with
``python -m repro.experiments``.
"""

from repro.experiments.result import Check, ExperimentResult, Section

__all__ = ["Check", "ExperimentResult", "Section"]
