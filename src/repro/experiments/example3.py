"""E5 — Example 3: Brown retrieves names and salaries of employees with
the same title.

Reproduces the self-join refinement (SAE combining with each EST tuple
into ``(*, x4*, *)``), the meta self-product, the full-visibility mask,
and the paper's closing behaviour: "This answer will be delivered
without any accompanying permit statements."
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.tables import (
    mask_table,
    meta_tuple_cells,
    pruned_meta_table,
)
from repro.workloads.paperdb import EXAMPLE_3_QUERY, build_paper_engine


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E5",
        title="Example 3 — Brown: names and salaries of same-title "
              "employees",
        paper_artifact="Section 5, Example 3",
    )
    engine = build_paper_engine()
    answer = engine.authorize("Brown", EXAMPLE_3_QUERY)
    derivation = answer.derivation

    result.add_section("Query", EXAMPLE_3_QUERY)
    result.add_section(
        "Pruned EMPLOYEE' (Brown's admissible views)",
        pruned_meta_table("EMPLOYEE", ("NAME", "TITLE", "SALARY"),
                          derivation.pruned_meta["EMPLOYEE"]),
    )
    result.add_section(
        "Self-join refinement: SAE combined with each EST tuple",
        pruned_meta_table("EMPLOYEE", ("NAME", "TITLE", "SALARY"),
                          derivation.selfjoin_added["EMPLOYEE"]),
    )
    assert derivation.mask is not None
    result.add_section("A' after selection and projection (the mask)",
                       mask_table(derivation.mask))
    result.add_section("Delivered answer", answer.render())

    # -- checks ----------------------------------------------------------
    combined = tuple(
        meta_tuple_cells(t) for t in derivation.selfjoin_added["EMPLOYEE"]
    )
    result.check_equal(
        "self-joins yield the two (*, x4*, *) combined tuples",
        combined, (("*", "x4*", "*"), ("*", "x4*", "*")),
    )
    result.check_equal(
        "the combined tuples belong to views EST and SAE",
        tuple(sorted(t.views)
              for t in derivation.selfjoin_added["EMPLOYEE"]),
        (["EST", "SAE"], ["EST", "SAE"]),
    )
    result.check_equal(
        "the final mask stars every requested column unrestricted",
        tuple(meta_tuple_cells(r.meta) for r in derivation.mask.rows),
        (("*", "*", "*", "*"),),
    )
    result.check_equal(
        "no permit statements accompany the answer",
        answer.permits, (),
    )
    result.add_check(
        "the answer is delivered in full",
        answer.is_fully_delivered,
    )
    # Without the self-join refinement the salaries of the *pairs*
    # cannot be combined with the same-title selection: the delivery
    # degrades.  This motivates the refinement.
    from repro.config import DEFAULT_CONFIG

    reduced = build_paper_engine(DEFAULT_CONFIG.but(self_joins=False)) \
        .authorize("Brown", EXAMPLE_3_QUERY)
    result.add_check(
        "without self-joins the delivery is strictly smaller",
        reduced.stats().delivered_cells < answer.stats().delivered_cells,
        detail=(
            f"with: {answer.stats().delivered_cells}, "
            f"without: {reduced.stats().delivered_cells}"
        ),
    )
    return result
