"""E13 — quantifying the method's incompleteness.

Section 4.2 opens with a caveat: "the theorem guarantees that the
method for generating subviews is sound, but it does not guarantee that
it is complete.  That is, this method generates subviews of the result
that should indeed be authorized, but does not necessarily generate all
such subviews."

The paper never measures that gap; with the containment checker we can.
For a user granted exactly one view V, every request Q with a
containment certificate Q ⊆ V *should* (ideally) be delivered in full.
We generate certified requests of four structural kinds and record how
often the algebraic method actually delivers them:

* **defining** — V's own defining query;
* **narrowed** — extra comparisons on projected attributes (handled by
  the four-case refinement);
* **projected-free** — projections of V's target dropping only
  unconstrained attributes (handled by Definition 3);
* **projected-constrained** — projections dropping a *constrained*
  attribute.  The certificate exists, but the mask would have to be
  "expressed with additional attributes" — exactly the Section 6(3)
  future-work case, so the method is expected to fail here.

The experiment asserts full delivery for the first three kinds and
documents the measured failure of the fourth — the paper's known gap,
made quantitative.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algebra.schema import DatabaseSchema
from repro.algebra.types import INTEGER
from repro.calculus.ast import Condition, ConstTerm, Query, ViewDefinition
from repro.core.answer import AuthorizedAnswer
from repro.calculus.containment import is_contained_in
from repro.core.engine import AuthorizationEngine
from repro.errors import ReproError
from repro.experiments.result import ExperimentResult
from repro.experiments.tables import ascii_table
from repro.meta.catalog import PermissionCatalog
from repro.predicates.comparators import Comparator
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec
from repro.workloads.paperdb import build_paper_database

KINDS = ("defining", "narrowed", "projected-free",
         "projected-constrained")


def _probes_for_view(
    view: ViewDefinition, schema: DatabaseSchema,
) -> List[Tuple[str, Query, bool]]:
    """(kind, query, needs_containment_check) probes for ``view``.

    Same-arity probes (defining, narrowed) get their certificate from
    the containment checker.  Projection probes are views of V *by
    construction* — they are literally ``pi(V)`` with V's own
    conditions — so their certificate is syntactic and containment
    (which compares equal-arity tuple sets) does not apply.
    """
    probes: List[Tuple[str, Query, bool]] = [
        ("defining", Query(view.target, view.conditions), True),
    ]

    # Narrow on an integer target attribute.
    int_targets = [
        ref for ref in view.target
        if schema.get(ref.relation).domain_of(ref.attribute) is INTEGER
    ]
    if int_targets:
        ref = int_targets[0]
        probes.append(("narrowed", Query(
            view.target,
            view.conditions + (
                Condition(ref, Comparator.GE, ConstTerm(3)),
            ),
        ), True))

    # Which target attributes are constrained (appear in conditions)?
    constrained = set()
    for condition in view.conditions:
        for ref in condition.attr_refs():
            constrained.add((ref.relation, ref.occurrence, ref.attribute))

    free = [
        ref for ref in view.target
        if (ref.relation, ref.occurrence, ref.attribute) not in constrained
    ]
    bound = [
        ref for ref in view.target
        if (ref.relation, ref.occurrence, ref.attribute) in constrained
    ]

    if free and len(free) < len(view.target):
        probes.append(("projected-free",
                       Query(tuple(free), view.conditions), False))
    if bound and free:
        # Drop one constrained attribute AND the conditions that
        # mention it: the user asks for the plain projection.  pi(V)
        # remains derivable from V by construction, but the mask would
        # need the dropped attribute to express the row restriction —
        # the Section 6(3) case.
        dropped = bound[0]
        kept = tuple(r for r in view.target if r != dropped)
        reduced = tuple(
            c for c in view.conditions
            if all(
                (r.relation, r.occurrence, r.attribute)
                != (dropped.relation, dropped.occurrence,
                    dropped.attribute)
                for r in c.attr_refs()
            )
        )
        if kept:
            probes.append(("projected-constrained",
                           Query(kept, reduced), False))
    return probes


def _ideal_rows_delivered(
    engine: AuthorizationEngine, view: ViewDefinition,
    query: Query, answer: "AuthorizedAnswer",
) -> bool:
    """Does the delivery cover every row of pi_target(V)?"""
    from repro.algebra.optimize import evaluate_optimized
    from repro.calculus.to_algebra import compile_query
    from repro.core.mask import MASKED

    ideal_plan = compile_query(
        Query(query.target, view.conditions), engine.database.schema
    )
    ideal = set(evaluate_optimized(ideal_plan, engine.database).rows)
    visible = {
        row for row in answer.delivered
        if all(value is not MASKED for value in row)
    }
    return ideal <= visible


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E13",
        title="Completeness gap, measured via containment certificates",
        paper_artifact="Section 4.2's soundness-not-completeness caveat",
    )

    database = build_paper_database()
    generator = WorkloadGenerator(31)
    spec = WorkloadSpec(seed=31, relations=3, views=0,
                        comparison_probability=1.0)

    # Views: the paper's four plus generated ones with comparisons.
    from repro.workloads.paperdb import VIEW_STATEMENTS
    from repro.lang.parser import parse_view

    views = [parse_view(text) for text in VIEW_STATEMENTS]
    for i in range(8):
        views.append(generator.view(spec, database.schema, f"G{i}"))

    attempted: Dict[str, int] = {kind: 0 for kind in KINDS}
    certified: Dict[str, int] = {kind: 0 for kind in KINDS}
    delivered: Dict[str, int] = {kind: 0 for kind in KINDS}

    for view in views:
        catalog = PermissionCatalog(database.schema)
        try:
            catalog.define_view(view)
        except ReproError:
            continue
        catalog.permit(view.name, "probe")
        engine = AuthorizationEngine(database, catalog)

        for kind, query, check in _probes_for_view(view, database.schema):
            try:
                has_certificate = (
                    is_contained_in(query, view, database.schema)
                    if check else True  # pi(V) is a view of V syntactically
                )
            except ReproError:
                # e.g. a narrowing that makes the probe statically
                # empty; such probes carry no information here.
                continue
            attempted[kind] += 1
            if not has_certificate:
                continue  # no certificate: outside this experiment
            certified[kind] += 1
            answer = engine.authorize("probe", query)
            if kind == "projected-constrained":
                # Ideal delivery: every row of pi(V) visible in full
                # (rows outside V legitimately mask).
                if _ideal_rows_delivered(engine, view, query, answer):
                    delivered[kind] += 1
            elif answer.is_fully_delivered:
                delivered[kind] += 1

    rows = [
        (kind, attempted[kind], certified[kind], delivered[kind],
         f"{delivered[kind]}/{certified[kind]}"
         if certified[kind] else "n/a")
        for kind in KINDS
    ]
    result.add_section(
        "Certified requests (Q ⊆ granted V) delivered in full",
        ascii_table(
            ("request kind", "attempted", "certified", "fully delivered",
             "completeness"),
            rows,
        ),
    )

    for kind in ("defining", "narrowed", "projected-free"):
        result.add_check(
            f"every certified '{kind}' request is delivered in full",
            certified[kind] > 0 and delivered[kind] == certified[kind],
            detail=f"{delivered[kind]}/{certified[kind]}",
        )
    result.add_check(
        "the Section 6(3) gap is observed: some certified "
        "'projected-constrained' request is NOT fully delivered",
        certified["projected-constrained"] > 0
        and delivered["projected-constrained"]
        < certified["projected-constrained"],
        detail=(
            f"{delivered['projected-constrained']}/"
            f"{certified['projected-constrained']}"
        ),
    )
    return result
