"""E1 — Figure 1: the database extended with access permissions.

Rebuilds Figure 1 from the four ``view`` and five ``permit`` statements
and checks every meta-tuple, every COMPARISON row and every PERMISSION
row against the figure's printed contents.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.algebra.relation import Row
from repro.experiments.result import ExperimentResult
from repro.experiments.tables import (
    comparison_table,
    figure1_table,
    meta_tuple_cells,
    permission_table,
)
from repro.workloads.paperdb import (
    GRANTS,
    build_paper_catalog,
    build_paper_database,
)

#: Figure 1's meta-relation contents, rendered in the paper's notation
#: ('*' = starred blank, '.' = blank).
EXPECTED_META: Dict[str, Tuple[Tuple[str, Tuple[str, ...]], ...]] = {
    "EMPLOYEE": (
        ("SAE", ("*", ".", "*")),
        ("ELP", ("x1*", "*", ".")),
        ("EST", ("*", "x4*", ".")),
        ("EST", ("*", "x4*", ".")),
    ),
    "PROJECT": (
        ("ELP", ("x2*", ".", "x3*")),
        ("PSA", ("*", "Acme*", "*")),
    ),
    "ASSIGNMENT": (
        ("ELP", ("x1*", "x2*")),
    ),
}

#: Figure 1's COMPARISON relation.
EXPECTED_COMPARISON = (("ELP", "x3", ">=", "250,000"),)


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E1",
        title="Database extended with access permissions",
        paper_artifact="Figure 1",
    )
    database = build_paper_database()
    catalog = build_paper_catalog(database)

    for relation in ("EMPLOYEE", "PROJECT", "ASSIGNMENT"):
        result.add_section(
            f"{relation} with meta-relation {relation}'",
            figure1_table(database, catalog, relation),
        )
    result.add_section("COMPARISON", comparison_table(catalog))
    result.add_section("PERMISSION", permission_table(catalog))

    for relation, expected_rows in EXPECTED_META.items():
        actual = tuple(
            (view, meta_tuple_cells(meta))
            for view, meta in catalog.meta_relation_rows(relation)
        )
        result.check_equal(
            f"meta-relation {relation}' matches Figure 1",
            _sorted_rows(actual), _sorted_rows(expected_rows),
        )

    result.check_equal(
        "COMPARISON matches Figure 1",
        catalog.comparison_rows(), EXPECTED_COMPARISON,
    )
    result.check_equal(
        "PERMISSION matches Figure 1",
        catalog.permission_rows(), GRANTS,
    )
    return result


def _sorted_rows(rows: Iterable[Row]) -> Tuple[Row, ...]:
    return tuple(sorted(rows, key=lambda r: (r[0], r[1])))
