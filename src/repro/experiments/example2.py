"""E4 — Example 2: Klein retrieves names and salaries of engineers on
very large projects.

Reproduces the pruned meta-relations, the three-way meta-product table
("the result of the product after replications are removed"), the
post-selection row with cleared variables, the final mask
``(NAME*, SALARY blank)``, the masked salaries, and ``permit (NAME)``.

The paper's printed product table predates the self-join refinement
(introduced only in Example 3), so the displayed trace is derived with
self-joins disabled; a check asserts the final mask is identical with
them enabled.
"""

from __future__ import annotations

from repro.config import DEFAULT_CONFIG
from repro.core.mask import MASKED
from repro.experiments.result import ExperimentResult
from repro.experiments.tables import (
    mask_table,
    meta_tuple_cells,
    pruned_meta_table,
)
from repro.workloads.paperdb import EXAMPLE_2_QUERY, build_paper_engine

#: The paper's product table (rows reachable without self-joins and
#: with padding), in our canonical rendering.  Variable names follow
#: Figure 1's catalog numbering.
EXPECTED_PRODUCT_ROWS = {
    ("x1*", "*", ".", "x1*", "x2*", "x2*", ".", "x3*"),
    ("x1*", "*", ".", "x1*", "x2*", ".", ".", "."),
    ("x1*", "*", ".", ".", ".", "x2*", ".", "x3*"),
    ("x1*", "*", ".", ".", ".", ".", ".", "."),
    ("*", "x4*", ".", "x1*", "x2*", "x2*", ".", "x3*"),
    ("*", "x4*", ".", "x1*", "x2*", ".", ".", "."),
    ("*", "x4*", ".", ".", ".", "x2*", ".", "x3*"),
    ("*", "x4*", ".", ".", ".", ".", ".", "."),
    (".", ".", ".", "x1*", "x2*", "x2*", ".", "x3*"),
    (".", ".", ".", "x1*", "x2*", ".", ".", "."),
    (".", ".", ".", ".", ".", "x2*", ".", "x3*"),
}


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E4",
        title="Example 2 — Klein: engineers of very large projects",
        paper_artifact="Section 5, Example 2",
    )
    # streaming_product off: the paper's product table includes rows
    # the dangling-reference pruning later removes, and the streaming
    # product never materializes those.
    display_engine = build_paper_engine(
        DEFAULT_CONFIG.but(self_joins=False, streaming_product=False)
    )
    answer = display_engine.authorize("Klein", EXAMPLE_2_QUERY)
    derivation = answer.derivation

    result.add_section("Query", EXAMPLE_2_QUERY)
    for relation, labels in (
        ("EMPLOYEE", ("NAME", "TITLE", "SALARY")),
        ("PROJECT", ("NUMBER", "SPONSOR", "BUDGET")),
        ("ASSIGNMENT", ("E_NAME", "P_NO")),
    ):
        result.add_section(
            f"Pruned {relation}' (Klein's admissible views)",
            pruned_meta_table(relation, labels,
                              derivation.pruned_meta[relation]),
        )
    result.add_section(
        "Meta-product after replications are removed",
        mask_table(derivation.raw_product, show_views=True),
    )
    final_condition, final_table = derivation.after_selections[-1]
    result.add_section(
        "A' after the selections (variables cleared)",
        mask_table(final_table, show_views=True),
    )
    assert derivation.mask is not None
    result.add_section("A' after the projection (the mask)",
                       mask_table(derivation.mask))
    result.add_section("Delivered answer", answer.render())

    # -- checks ----------------------------------------------------------
    result.check_equal(
        "stage-one pruning keeps ELP and EST",
        tuple(sorted(derivation.admissible_views)), ("ELP", "EST"),
    )
    actual_product = {
        meta_tuple_cells(r.meta) for r in derivation.raw_product.rows
    }
    result.check_equal(
        "the meta-product matches the paper's table",
        actual_product, EXPECTED_PRODUCT_ROWS,
    )
    # The paper prints the cleared row as (*, *, blank...); we preserve
    # the star on cleared fields (a starred blank), which Definition 3
    # treats identically under projection and which additionally lets a
    # query that outputs both join columns receive both.  See DESIGN.md
    # "Known deviations".
    result.check_equal(
        "only the full ELP row survives the selections, cleared "
        "(stars preserved on cleared fields)",
        tuple(meta_tuple_cells(r.meta) for r in final_table.rows),
        (("*", "*", ".", "*", "*", "*", ".", "*"),),
    )
    result.check_equal(
        "the final mask permits NAME only",
        tuple(meta_tuple_cells(r.meta) for r in derivation.mask.rows),
        (("*", "."),),
    )
    result.check_equal(
        "inferred statement matches the paper",
        tuple(str(p) for p in answer.permits),
        ("permit (NAME)",),
    )
    result.check_equal(
        "Brown's name is delivered, his salary masked",
        set(answer.delivered), {("Brown", MASKED)},
    )

    # The printed trace disabled self-joins for fidelity with the
    # paper's table; the mask must not depend on that choice.
    full_engine = build_paper_engine()
    full_answer = full_engine.authorize("Klein", EXAMPLE_2_QUERY)
    result.check_equal(
        "enabling self-joins leaves the mask unchanged",
        tuple(meta_tuple_cells(r.meta)
              for r in full_answer.derivation.mask.rows),
        tuple(meta_tuple_cells(r.meta) for r in derivation.mask.rows),
    )
    return result
