"""E7 + E8 — the Section 1 comparisons with INGRES and System R.

E7, the INGRES row/column asymmetry: "Consider relation A with
attributes A1, A2 and A3, and assume permission is granted to the
tuples of A1 and A2 that satisfy a predicate P.  A request to retrieve
A1 and A2 would be reduced to the tuples ... that satisfy P.  However,
a request to retrieve A1, A2 and A3 would be denied altogether, where
one would expect that it would be reduced to tuples of A1 and A2."

E8, the System R access window: "We define this view V and grant access
permission to V, but not to A or B ... Queries that access A or B will
be rejected for lack of access permissions to these relations, even if
the requests are within the permissions."

Both limitations are reproduced on the reimplemented baselines, and the
paper's model is shown to remove them.
"""

from __future__ import annotations

from repro.algebra.database import Database, build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.baselines.ingres import IngresModel
from repro.baselines.interface import Outcome
from repro.baselines.motro import MotroModel
from repro.baselines.system_r import SystemRModel
from repro.calculus.ast import AttrRef, Condition, ConstTerm
from repro.core.engine import AuthorizationEngine
from repro.core.mask import MASKED
from repro.experiments.result import ExperimentResult
from repro.experiments.tables import ascii_table
from repro.meta.catalog import PermissionCatalog
from repro.predicates.comparators import Comparator


def _asymmetry_database() -> Database:
    """Relation A(A1, A2, A3) with a predicate P: A2 != u."""
    a = make_schema(
        "A", [("A1", STRING), ("A2", STRING), ("A3", INTEGER)], key=["A1"]
    )
    return build_database([a], {
        "A": [("r1", "u", 5), ("r2", "v", 15), ("r3", "w", 25)],
    })


def _window_database() -> Database:
    """Relations A and B joined by view V (the System R scenario)."""
    a = make_schema("A", [("K", STRING), ("X", INTEGER)], key=["K"])
    b = make_schema("B", [("K", STRING), ("Y", INTEGER)], key=["K"])
    return build_database([a, b], {
        "A": [("k1", 1), ("k2", 2)],
        "B": [("k1", 10), ("k2", 20)],
    })


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E7+E8",
        title="Limitations of the INGRES and System R baselines",
        paper_artifact="Section 1 (Introduction)",
    )

    # ----- E7: INGRES asymmetry ----------------------------------------
    # Permission: the tuples of A1 and A2 that satisfy P (P: A2 != u).
    database = _asymmetry_database()
    predicate = Condition(AttrRef("A", "A2"), Comparator.NE, ConstTerm("u"))

    ingres = IngresModel(database)
    ingres.permit("user", "A", ["A1", "A2"], [predicate])

    catalog = PermissionCatalog(database.schema)
    catalog.define_view("view P12 (A.A1, A.A2) where A.A2 != u")
    catalog.permit("P12", "user")
    motro = MotroModel(AuthorizationEngine(database, catalog))

    two_cols = "retrieve (A.A1, A.A2)"
    three_cols = "retrieve (A.A1, A.A2, A.A3)"

    ingres_two = ingres.authorize_query("user", two_cols)
    ingres_three = ingres.authorize_query("user", three_cols)
    motro_two = motro.authorize_query("user", two_cols)
    motro_three = motro.authorize_query("user", three_cols)

    result.add_section(
        "E7 — request (A1, A2) vs (A1, A2, A3) under permission "
        "(A1, A2) where P",
        ascii_table(
            ("model", "retrieve (A1, A2)", "retrieve (A1, A2, A3)"),
            [
                ("INGRES", str(ingres_two.outcome),
                 str(ingres_three.outcome)),
                ("Motro", str(motro_two.outcome), str(motro_three.outcome)),
            ],
        ),
    )
    result.check_equal(
        "INGRES reduces the two-column request to the tuples "
        "satisfying P",
        ingres_two.outcome, Outcome.PARTIAL,
    )
    result.check_equal(
        "INGRES denies the three-column request altogether",
        ingres_three.outcome, Outcome.DENIED,
    )
    result.check_equal(
        "Motro reduces the two-column request to the tuples "
        "satisfying P",
        {row for row in motro_two.delivered if MASKED not in row},
        {("r2", "v"), ("r3", "w")},
    )
    result.add_check(
        "Motro reduces the three-column request to columns A1, A2 "
        "instead of denying",
        motro_three.outcome is Outcome.PARTIAL and all(
            row[2] is MASKED for row in motro_three.delivered
        ),
        detail=f"outcome={motro_three.outcome}, rows={motro_three.delivered}",
    )
    result.check_equal(
        "Motro's three-column reduction respects P on the rows",
        {
            (row[0], row[1]) for row in motro_three.delivered
            if row[0] is not MASKED
        },
        {("r2", "v"), ("r3", "w")},
    )

    # ----- E8: System R access window ----------------------------------
    window_db = _window_database()
    system_r = SystemRModel(window_db)
    system_r.create_view(
        "_dba", "view V (A.K, A.X, B.Y) where A.K = B.K"
    )
    system_r.grant("_dba", "user", "V")

    catalog2 = PermissionCatalog(window_db.schema)
    catalog2.define_view("view V (A.K, A.X, B.Y) where A.K = B.K")
    catalog2.permit("V", "user")
    motro2 = MotroModel(AuthorizationEngine(window_db, catalog2))

    base_query = "retrieve (A.K, A.X, B.Y) where A.K = B.K"
    sr_base = system_r.authorize_query("user", base_query)
    sr_window = system_r.authorize_view_query("user", "V")
    motro_base = motro2.authorize_query("user", base_query)

    result.add_section(
        "E8 — the same request addressed at the base relations vs at "
        "the view window",
        ascii_table(
            ("model", "query on A, B", "query on view V"),
            [
                ("System R", str(sr_base.outcome),
                 str(sr_window.outcome)),
                ("Motro", str(motro_base.outcome),
                 "(views are not windows)"),
            ],
        ),
    )
    result.check_equal(
        "System R rejects the base-relation query despite view V",
        sr_base.outcome, Outcome.DENIED,
    )
    result.check_equal(
        "System R delivers through the window",
        sr_window.outcome, Outcome.FULL,
    )
    result.check_equal(
        "Motro delivers the base-relation query in full",
        motro_base.outcome, Outcome.FULL,
    )
    result.check_equal(
        "both full deliveries agree on the data",
        set(motro_base.delivered), set(sr_window.delivered),
    )
    return result
