"""E2 — Figure 2: the commutative diagram, validated empirically.

Figure 2 claims query processing extended to the meta-relations
commutes: deriving A' through the meta-operators describes exactly the
permitted views of the answer A.  Two executable readings:

1. **Propositions 1-3** (the diagram's edges): for seeded random
   meta-tuples, the meta-product/-selection/-projection of Definitions
   1-3 materialize to the product/selection/projection of the operand
   materializations.
2. **Non-interference** (the diagram's global consequence): on seeded
   random workloads, instances agreeing on a user's permitted views
   yield identical deliveries — the user learns nothing beyond the
   views.  This is the Theorem's semantic content, checked end to end
   with all refinements enabled.
"""

from __future__ import annotations

from repro.algebra.expression import AtomicCondition, Col, Const
from repro.baselines.oracle import check_non_interference
from repro.config import BASE_MODEL_CONFIG
from repro.core.mask import materialize_meta_tuple
from repro.experiments.result import ExperimentResult
from repro.experiments.tables import ascii_table
from repro.metaalgebra.projection import meta_project
from repro.metaalgebra.selection import meta_select
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.predicates.comparators import Comparator
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec

#: Workload seeds for the non-interference sweep.
SEEDS = (7, 11, 23)
QUERIES_PER_SEED = 12
MUTATIONS_PER_QUERY = 3


def _proposition_checks(result: ExperimentResult) -> None:
    """Propositions 1-3 on the paper database's own meta-tuples."""
    from repro.workloads.paperdb import (
        build_paper_catalog,
        build_paper_database,
    )

    database = build_paper_database()
    catalog = build_paper_catalog(database)

    employee = database.instance("EMPLOYEE")
    project = database.instance("PROJECT")

    checked = failures = 0
    for view_name in catalog.view_names():
        encoded = catalog.view(view_name)
        store = encoded.store
        for (rel_a, meta_a), (rel_b, meta_b) in zip(
            encoded.tuples, encoded.tuples[1:]
        ):
            # Proposition 1: q(D) = r(D) x s(D) — for meta-tuples whose
            # variables are private to each operand (shared variables
            # make q a *selection* of the product, which is Prop. 2's
            # territory).
            if set(meta_a.variables()) & set(meta_b.variables()):
                continue
            left = database.instance(rel_a)
            right = database.instance(rel_b)
            q = meta_a.concat(meta_b)
            combined = materialize_meta_tuple(q, store, left.product(right))
            separate = materialize_meta_tuple(meta_a, store, left).product(
                materialize_meta_tuple(meta_b, store, right)
            )
            checked += 1
            if not combined.same_rows(separate):
                failures += 1

    # Proposition 2 on concrete selections (base Definition 2, which the
    # proposition is stated for).
    psa = catalog.tuples_for("PROJECT", ["PSA"])[0]
    store = catalog.store_for(["PSA"])
    table = MaskTable(
        tuple(project.columns), (MaskRow(psa, store),)
    )
    for op, bound in ((Comparator.GE, 250_000), (Comparator.LT, 400_000)):
        condition = AtomicCondition(Col(2), op, Const(bound))
        selected = meta_select(table, condition, BASE_MODEL_CONFIG)
        meta_side = (
            materialize_meta_tuple(
                selected.rows[0].meta, selected.rows[0].store, project
            )
            if selected.rows else project.select(lambda r: False).project(
                psa.starred_positions()
            )
        )
        data_side = materialize_meta_tuple(psa, store, project).select(
            lambda row: op.evaluate(row[2], bound)
        )
        checked += 1
        if not meta_side.same_rows(data_side):
            failures += 1

    # Proposition 3: projecting away a blank attribute commutes.
    sae = catalog.tuples_for("EMPLOYEE", ["SAE"])[0]
    table = MaskTable(
        tuple(employee.columns),
        (MaskRow(sae, catalog.store_for(["SAE"])),),
    )
    projected = meta_project(table, (0, 2))
    meta_side = materialize_meta_tuple(
        projected.rows[0].meta, projected.rows[0].store,
        employee.project((0, 2)),
    )
    data_side = materialize_meta_tuple(
        sae, catalog.store_for(["SAE"]), employee
    )
    checked += 1
    if not meta_side.same_rows(data_side):
        failures += 1

    result.add_check(
        f"Propositions 1-3 hold on {checked} operator instances",
        failures == 0,
        detail=f"{failures} failures",
    )


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E2",
        title="The commutative diagram, empirically",
        paper_artifact="Figure 2 / Propositions 1-3 / Theorem",
    )

    _proposition_checks(result)

    rows = []
    total_applicable = total_violations = 0
    for seed in SEEDS:
        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed)
        workload = generator.workload(spec)
        applicable = violations = vacuous = 0
        for _ in range(QUERIES_PER_SEED):
            query = generator.query(spec, workload.database.schema)
            for _ in range(MUTATIONS_PER_QUERY):
                mutated = generator.mutate(spec, workload.database)
                for user in workload.users:
                    ok, message = check_non_interference(
                        workload.catalog, user, query,
                        workload.database, mutated,
                    )
                    if "vacuous" in message:
                        vacuous += 1
                        continue
                    applicable += 1
                    if not ok:
                        violations += 1
        rows.append((seed, applicable, vacuous, violations))
        total_applicable += applicable
        total_violations += violations

    result.add_section(
        "Non-interference sweep (mutations invisible to the user's "
        "views must not change deliveries)",
        ascii_table(
            ("seed", "applicable checks", "vacuous", "violations"), rows
        ),
    )
    result.add_check(
        f"no non-interference violations in {total_applicable} "
        "applicable checks",
        total_violations == 0 and total_applicable > 0,
        detail=f"{total_violations} violations",
    )
    return result
