"""E9 + E11 — refinement ablations.

E9 reproduces Section 4.2's product-padding example: "assume that Q is
a product of R and S, followed by a projection that removes all the
attributes of S.  Obviously, Q is equivalent to R, and A' should retain
all the meta-tuples of R'.  However, these meta-tuples may be discarded
by the projection" — without padding, nothing is delivered; with it,
the subviews of R' survive.

E11 measures each refinement's contribution on the paper database and
on seeded random workloads: delivered cells under the full
configuration versus each refinement toggled off, versus the bare
Definitions 1-3 model.  Refinements only ever *add* delivered cells
(they are completeness devices; soundness is E2's department).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.algebra.database import build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.config import BASE_MODEL_CONFIG, DEFAULT_CONFIG, EngineConfig
from repro.core.engine import AuthorizationEngine
from repro.experiments.result import ExperimentResult
from repro.experiments.tables import ascii_table
from repro.meta.catalog import PermissionCatalog
from repro.calculus.ast import Query
from repro.workloads.generator import (
    Workload,
    WorkloadGenerator,
    WorkloadSpec,
)
from repro.workloads.paperdb import (
    EXAMPLE_1_QUERY,
    EXAMPLE_2_QUERY,
    EXAMPLE_3_QUERY,
    build_paper_engine,
)

CONFIGS: Tuple[Tuple[str, EngineConfig], ...] = (
    ("full model", DEFAULT_CONFIG),
    ("no product padding (R1 off)", DEFAULT_CONFIG.but(product_padding=False)),
    ("no four-case selection (R2 off)",
     DEFAULT_CONFIG.but(refine_selection=False)),
    ("no self-joins (R3 off)", DEFAULT_CONFIG.but(self_joins=False)),
    ("base Definitions 1-3 only", BASE_MODEL_CONFIG),
)


def _padding_example(result: ExperimentResult) -> None:
    """E9: Q = product of R and S, projected (essentially) back onto R.

    The paper's scenario requires the S-side meta-tuples to "contain
    restrictions in the attributes contributed by S'", so the S view
    carries a comparison on S.SV; the projection that removes S.SV then
    discards every combined row — unless padding preserved the pure
    R' subviews.
    """
    r = make_schema("R", [("RK", STRING), ("RV", INTEGER)], key=["RK"])
    s = make_schema("S", [("SK", STRING), ("SV", INTEGER)], key=["SK"])
    database = build_database([r, s], {
        "R": [("a", 1), ("b", 2)],
        "S": [("x", 10)],
    })
    catalog = PermissionCatalog(database.schema)
    catalog.define_view("view ALL_R (R.RK, R.RV)")
    catalog.define_view("view SOME_S (S.SK, S.SV) where S.SV >= 5")
    catalog.permit("ALL_R", "user")
    catalog.permit("SOME_S", "user")

    # Q is a product of R and S whose projection removes S.SV (the
    # restricted attribute).  R's columns are exactly what ALL_R grants.
    query = "retrieve (R.RK, R.RV, S.SK)"

    rows = []
    r_cells: Dict[str, int] = {}
    for label, padding in (("with padding", True),
                           ("without padding", False)):
        engine = AuthorizationEngine(
            database, catalog, DEFAULT_CONFIG.but(product_padding=padding)
        )
        answer = engine.authorize("user", query)
        from repro.core.mask import MASKED

        delivered_r = sum(
            1 for row in answer.delivered
            for value in row[:2] if value is not MASKED
        )
        rows.append((label, delivered_r,
                     answer.stats().delivered_cells,
                     answer.stats().total_cells))
        r_cells[label] = delivered_r

    result.add_section(
        "E9 — Q = R x S with the restricted S attribute projected away",
        ascii_table(
            ("configuration", "delivered R cells", "delivered cells",
             "total cells"),
            rows,
        ),
    )
    result.add_check(
        "without padding the projection discards every subview of R'",
        r_cells["without padding"] == 0,
        detail=f"delivered {r_cells['without padding']}",
    )
    result.add_check(
        "with padding the subviews of R' survive and R is delivered",
        r_cells["with padding"] > 0,
        detail=f"delivered {r_cells['with padding']}",
    )


def _probe_queries(workload: Workload) -> List["Query"]:
    """Queries derived from the workload's views.

    Random independent queries rarely touch the regions where the
    refinements matter; probes derived from the granted views do:
    the view itself (full-delivery check), a narrowed version (the
    four-case analysis), a column-extended version (column reduction
    via padding/clearing), and a projected version (Definition 3).
    """
    from repro.algebra.types import INTEGER
    from repro.calculus.ast import Condition, ConstTerm, Query
    from repro.predicates.comparators import Comparator

    schema = workload.database.schema
    queries: List[Query] = []
    for view in workload.views:
        queries.append(Query(view.target, view.conditions))

        # Narrow: tighten with a comparison on an integer target attr.
        int_targets = [
            ref for ref in view.target
            if schema.get(ref.relation).domain_of(ref.attribute) is INTEGER
        ]
        if int_targets:
            ref = int_targets[0]
            queries.append(Query(
                view.target,
                view.conditions + (
                    Condition(ref, Comparator.GE, ConstTerm(5)),
                    Condition(ref, Comparator.LE, ConstTerm(15)),
                ),
            ))

        # Extend: request every attribute of the first relation.
        first = view.target[0]
        rel_schema = schema.get(first.relation)
        extra = tuple(
            type(first)(first.relation, name, first.occurrence)
            for name in rel_schema.attribute_names
            if not any(
                t.relation == first.relation
                and t.occurrence == first.occurrence
                and t.attribute == name
                for t in view.target
            )
        )
        if extra:
            queries.append(Query(view.target + extra, view.conditions))

        # Project: the first target column only.
        queries.append(Query((view.target[0],), view.conditions))
    return queries


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E9+E11",
        title="Refinement ablations",
        paper_artifact="Section 4.2 (refinements)",
    )

    _padding_example(result)

    # -- paper-database ablation ---------------------------------------
    paper_queries = (
        ("Brown", EXAMPLE_1_QUERY),
        ("Klein", EXAMPLE_2_QUERY),
        ("Brown", EXAMPLE_3_QUERY),
    )
    rows = []
    full_cells = None
    per_config: Dict[str, int] = {}
    for label, config in CONFIGS:
        engine = build_paper_engine(config)
        delivered = sum(
            engine.authorize(user, query).stats().delivered_cells
            for user, query in paper_queries
        )
        per_config[label] = delivered
        if label == "full model":
            full_cells = delivered
        rows.append((label, delivered))
    result.add_section(
        "E11a — delivered cells over the three Section 5 examples",
        ascii_table(("configuration", "delivered cells"), rows),
    )
    assert full_cells is not None
    for label, delivered in per_config.items():
        result.add_check(
            f"'{label}' never delivers more than the full model",
            delivered <= full_cells,
            detail=f"{delivered} vs full {full_cells}",
        )
    # R1 (padding) does not influence the three worked examples — its
    # contribution is E9's scenario above; R2 and R3 must each matter.
    result.add_check(
        "disabling four-case selection (R2) strictly reduces delivery "
        "on the paper's examples",
        per_config["no four-case selection (R2 off)"] < full_cells,
        detail=str(per_config),
    )
    result.add_check(
        "disabling self-joins (R3) strictly reduces delivery on the "
        "paper's examples",
        per_config["no self-joins (R3 off)"] < full_cells,
        detail=str(per_config),
    )

    # -- random-workload ablation ---------------------------------------
    generator = WorkloadGenerator(101)
    spec = WorkloadSpec(seed=101, views=5, users=2,
                        comparison_probability=0.9)
    workload = generator.workload(spec)
    queries = _probe_queries(workload)
    rows = []
    random_cells: Dict[str, int] = {}
    for label, config in CONFIGS:
        engine = AuthorizationEngine(
            workload.database, workload.catalog, config
        )
        delivered = 0
        for query in queries:
            for user in workload.users:
                delivered += engine.authorize(user, query) \
                    .stats().delivered_cells
        random_cells[label] = delivered
        rows.append((label, delivered))
    result.add_section(
        f"E11b — delivered cells over {len(queries)} view-derived probe "
        "queries x 2 users (seed 101)",
        ascii_table(("configuration", "delivered cells"), rows),
    )
    for label, delivered in random_cells.items():
        result.add_check(
            f"random workload: '{label}' <= full model",
            delivered <= random_cells["full model"],
            detail=f"{delivered} vs {random_cells['full model']}",
        )
    result.add_check(
        "the probe workload separates the configurations "
        "(some ablation delivers strictly less)",
        any(
            delivered < random_cells["full model"]
            for label, delivered in random_cells.items()
            if label != "full model"
        ),
        detail=str(random_cells),
    )
    return result
