"""E3 — Example 1: Brown retrieves numbers and sponsors of large projects.

Reproduces every step the paper prints: the pruned PROJECT', the mask
after selection and projection ``(*, Acme*)``, the masked delivery, and
the inferred statement ``permit (NUMBER, SPONSOR) where SPONSOR = Acme``.
"""

from __future__ import annotations

from repro.experiments.result import ExperimentResult
from repro.experiments.tables import (
    mask_table,
    meta_tuple_cells,
    pruned_meta_table,
)
from repro.workloads.paperdb import EXAMPLE_1_QUERY, build_paper_engine


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E3",
        title="Example 1 — Brown: numbers and sponsors of large projects",
        paper_artifact="Section 5, Example 1",
    )
    engine = build_paper_engine()
    answer = engine.authorize("Brown", EXAMPLE_1_QUERY)
    derivation = answer.derivation

    result.add_section("Query", EXAMPLE_1_QUERY)
    result.add_section(
        "Pruned PROJECT' (Brown's views defined entirely in PROJECT)",
        pruned_meta_table(
            "PROJECT", ("NUMBER", "SPONSOR", "BUDGET"),
            derivation.pruned_meta["PROJECT"],
        ),
    )
    condition, after = derivation.after_selections[0]
    result.add_section(
        "A' after selection BUDGET >= 250,000",
        mask_table(after, show_views=True),
    )
    assert derivation.mask is not None
    result.add_section("A' after projection (the mask)",
                       mask_table(derivation.mask))
    result.add_section("Delivered answer", answer.render())

    # -- checks against the paper's printed outcome ---------------------
    result.check_equal(
        "stage-one pruning keeps exactly PSA",
        derivation.admissible_views, ("PSA",),
    )
    result.check_equal(
        "the selection retains the PSA tuple unmodified",
        tuple(meta_tuple_cells(r.meta) for r in after.rows),
        (("*", "Acme*", "*"),),
    )
    result.check_equal(
        "final mask is (*, Acme*)",
        tuple(meta_tuple_cells(r.meta) for r in derivation.mask.rows),
        (("*", "Acme*"),),
    )
    result.check_equal(
        "inferred statement matches the paper",
        tuple(str(p) for p in answer.permits),
        ("permit (NUMBER, SPONSOR) where SPONSOR = Acme",),
    )
    # Data-level outcome: bq-45/Acme delivered, sv-72/Apex masked.
    from repro.core.mask import MASKED

    result.check_equal(
        "Acme's project is delivered and the Apex project is masked",
        set(answer.delivered),
        {("bq-45", "Acme"), (MASKED, MASKED)},
    )
    return result
