"""Experiment registry and command-line runner.

``python -m repro.experiments`` runs every experiment (or those named
on the command line) and prints the paper-style tables plus the
pass/fail checks.  The same registry backs the test suite
(``tests/experiments``) and the benchmark harness.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Sequence

from repro.experiments import (
    ablation,
    baseline_limitations,
    completeness,
    coverage,
    example1,
    example2,
    example3,
    fig1,
    fig2,
    refinement_cases,
    scaling,
)
from repro.experiments.result import ExperimentResult

#: Experiment id -> runner, in DESIGN.md order.
REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {
    "E1": fig1.run,
    "E2": fig2.run,
    "E3": example1.run,
    "E4": example2.run,
    "E5": example3.run,
    "E6": refinement_cases.run,
    "E7": baseline_limitations.run,   # E7+E8 share a module
    "E9": ablation.run,               # E9+E11 share a module
    "E10": coverage.run,
    "E12": scaling.run,
    "E13": completeness.run,
}

#: Aliases so every DESIGN.md id resolves.
ALIASES = {"E8": "E7", "E11": "E9"}


def run_experiment(exp_id: str) -> ExperimentResult:
    """Run one experiment by id (aliases accepted)."""
    canonical = ALIASES.get(exp_id, exp_id)
    return REGISTRY[canonical]()


def run_all(ids: Sequence[str] = ()) -> List[ExperimentResult]:
    """Run the requested experiments (all when ``ids`` is empty)."""
    targets = list(ids) or list(REGISTRY)
    seen = set()
    results = []
    for exp_id in targets:
        canonical = ALIASES.get(exp_id, exp_id)
        if canonical in seen:
            continue
        seen.add(canonical)
        results.append(REGISTRY[canonical]())
    return results


def main(argv: Sequence[str] = ()) -> int:
    """Entry point: render every requested experiment, return 0 on
    all-pass."""
    argv = list(argv) or sys.argv[1:]
    try:
        results = run_all(argv)
    except KeyError as error:
        print(f"unknown experiment id {error}; "
              f"known: {', '.join(REGISTRY)} (+ {', '.join(ALIASES)})")
        return 2
    failed = 0
    for result in results:
        print(result.render())
        print()
        if not result.passed:
            failed += 1
    summary = (
        f"{len(results)} experiments, "
        f"{len(results) - failed} passed, {failed} failed"
    )
    print(summary)
    return 1 if failed else 0
