"""E12 — scaling behaviour of mask derivation.

The paper argues the meta-side cost is modest: "the optimality is not
so essential for meta-relations, because they are relatively small".
Three measurements substantiate that:

* mask-derivation latency vs the number of granted views (the
  meta-relations grow with the catalog, not the data);
* mask-derivation latency vs the number of relations in the query (the
  padded product is exponential in query arity — the price of the
  products-first strategy);
* mask-derivation latency vs the instance size (must be flat: the mask
  never touches data), contrasted with answer-evaluation latency
  (which grows).
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from repro.algebra.database import build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.core.engine import AuthorizationEngine
from repro.experiments.result import ExperimentResult
from repro.experiments.tables import ascii_table
from repro.meta.catalog import PermissionCatalog
from repro.workloads.generator import WorkloadGenerator, WorkloadSpec


def _time(callable_: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-N wall time in milliseconds."""
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _views_scaling() -> Tuple[List[Tuple], bool]:
    generator = WorkloadGenerator(5)
    spec = WorkloadSpec(seed=5, relations=4, views=0)
    db_schema = generator.schema(spec)
    database = generator.instance(spec, db_schema)

    rows: List[Tuple] = []
    timings: List[float] = []
    catalog = PermissionCatalog(db_schema)
    query = generator.query(spec, db_schema)
    view_counts = (4, 16, 64)
    defined = 0
    for target in view_counts:
        while defined < target:
            catalog.define_view(
                generator.view(spec, db_schema, f"SV{defined}")
            )
            catalog.permit(f"SV{defined}", "user")
            defined += 1
        engine = AuthorizationEngine(database, catalog)
        millis = _time(lambda: engine.derive("user", query))
        rows.append((target, f"{millis:.2f} ms"))
        timings.append(millis)
    return rows, timings[-1] < timings[0] * 500


def _relations_scaling() -> List[Tuple]:
    generator = WorkloadGenerator(6)
    spec = WorkloadSpec(seed=6, relations=5, views=0)
    db_schema = generator.schema(spec)
    database = generator.instance(spec, db_schema)
    catalog = PermissionCatalog(db_schema)
    for i, relation in enumerate(db_schema):
        attrs = ", ".join(
            f"{relation.name}.{a.name}" for a in relation.attributes
        )
        catalog.define_view(f"view FULL{i} ({attrs})")
        catalog.permit(f"FULL{i}", "user")

    rows: List[Tuple] = []
    names = list(db_schema.names())
    for count in (1, 2, 3, 4):
        target = ", ".join(
            f"{name}.{db_schema.get(name).attribute_names[0]}"
            for name in names[:count]
        )
        query = f"retrieve ({target})"
        engine = AuthorizationEngine(database, catalog)
        millis = _time(lambda q=query: engine.derive("user", q))
        rows.append((count, f"{millis:.2f} ms"))
    return rows


def _data_scaling() -> Tuple[List[Tuple], bool]:
    project = make_schema(
        "PROJECT",
        [("NUMBER", STRING), ("SPONSOR", STRING), ("BUDGET", INTEGER)],
        key=["NUMBER"],
    )
    rows_out: List[Tuple] = []
    mask_times: List[float] = []
    for size in (100, 1_000, 10_000):
        data = [
            (f"p{i}", f"sp{i % 7}", (i * 37) % 1_000_000)
            for i in range(size)
        ]
        database = build_database([project], {"PROJECT": data})
        catalog = PermissionCatalog(database.schema)
        catalog.define_view(
            "view BIG (PROJECT.NUMBER, PROJECT.SPONSOR, PROJECT.BUDGET) "
            "where PROJECT.BUDGET >= 500,000"
        )
        catalog.permit("BIG", "user")
        engine = AuthorizationEngine(database, catalog)
        query = ("retrieve (PROJECT.NUMBER, PROJECT.SPONSOR) "
                 "where PROJECT.BUDGET >= 250,000")
        mask_ms = _time(lambda: engine.derive("user", query))
        full_ms = _time(lambda: engine.authorize("user", query))
        rows_out.append((size, f"{mask_ms:.2f} ms", f"{full_ms:.2f} ms"))
        mask_times.append(mask_ms)
    flat = mask_times[-1] < mask_times[0] * 20 + 1.0
    return rows_out, flat


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E12",
        title="Scaling of mask derivation",
        paper_artifact="Section 4.1's cost argument",
    )

    view_rows, views_ok = _views_scaling()
    result.add_section(
        "Mask derivation vs number of granted views (4-relation schema)",
        ascii_table(("granted views", "derive time"), view_rows),
    )
    result.add_check(
        "derivation stays tractable as the catalog grows",
        views_ok,
    )

    relation_rows = _relations_scaling()
    result.add_section(
        "Mask derivation vs relations in the query (full-relation views)",
        ascii_table(("relations in query", "derive time"), relation_rows),
    )

    data_rows, flat = _data_scaling()
    result.add_section(
        "Mask derivation vs instance size (vs full authorize)",
        ascii_table(
            ("rows in PROJECT", "derive (mask only)",
             "authorize (mask + data + delivery)"),
            data_rows,
        ),
    )
    result.add_check(
        "mask derivation cost is independent of the instance size",
        flat,
    )
    return result
