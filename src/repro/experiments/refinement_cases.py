"""E6 — the Section 4.2 selection case analysis.

"Assume a meta-tuple that defines the projects whose budgets are
between $300,000 and $600,000, and consider the following four queries
that select the projects whose budgets are (1) between $200,000 and
$400,000, (2) between $200,000 and $700,000, (3) between $400,000 and
$500,000, and (4) under $300,000."

Expected outcomes, per the paper: (1) modify the view to budgets
between $300,000 and $400,000; (2) retain unmodified; (3) clear the
budget restriction; (4) discard.

The experiment checks the classifier directly *and* end to end through
the engine: a user granted the 300k-600k view issues each probe query,
and the resulting mask (and its inferred permit statement) must reflect
the case.
"""

from __future__ import annotations

from typing import Tuple

from repro.algebra.database import build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import INTEGER, STRING
from repro.core.engine import AuthorizationEngine
from repro.experiments.result import ExperimentResult
from repro.experiments.tables import ascii_table
from repro.meta.catalog import PermissionCatalog
from repro.predicates.implication import SelectionCase, classify
from repro.predicates.intervals import Interval

#: (label, lower bound or None, upper bound or None, expected case,
#:  expected budget clauses in the inferred permit statement)
PROBES: Tuple[Tuple[str, int, int, SelectionCase, Tuple[str, ...]], ...] = (
    ("between 200,000 and 400,000", 200_000, 400_000,
     SelectionCase.CONJOIN,
     ("BUDGET >= 300,000", "BUDGET <= 400,000")),
    ("between 200,000 and 700,000", 200_000, 700_000,
     SelectionCase.RETAIN,
     ("BUDGET >= 300,000", "BUDGET <= 600,000")),
    ("between 400,000 and 500,000", 400_000, 500_000,
     SelectionCase.CLEAR, ()),
    ("under 300,000", None, 299_999, SelectionCase.DISCARD, ()),
)


def _engine() -> AuthorizationEngine:
    project = make_schema(
        "PROJECT",
        [("NUMBER", STRING), ("SPONSOR", STRING), ("BUDGET", INTEGER)],
        key=["NUMBER"],
    )
    database = build_database([project], {
        "PROJECT": [
            ("p-lo", "A", 250_000),
            ("p-in1", "B", 350_000),
            ("p-in2", "C", 450_000),
            ("p-hi", "D", 650_000),
        ],
    })
    catalog = PermissionCatalog(database.schema)
    catalog.define_view(
        "view MID (PROJECT.NUMBER, PROJECT.BUDGET) "
        "where PROJECT.BUDGET >= 300,000 and PROJECT.BUDGET <= 600,000"
    )
    catalog.permit("MID", "analyst")
    return AuthorizationEngine(database, catalog)


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E6",
        title="Four-case selection refinement",
        paper_artifact="Section 4.2, selection case analysis",
    )
    mu = Interval(lo=300_000, hi=600_000, discrete=True)
    engine = _engine()

    rows = []
    for label, lo, hi, expected_case, expected_clauses in PROBES:
        lam = Interval(lo=lo, hi=hi, discrete=True)
        case = classify(mu, lam)
        result.check_equal(
            f"classifier: budgets {label} -> {expected_case}",
            case, expected_case,
        )

        conditions = []
        if lo is not None:
            conditions.append(f"PROJECT.BUDGET >= {lo:,}")
        if hi is not None:
            conditions.append(f"PROJECT.BUDGET <= {hi:,}")
        query = (
            "retrieve (PROJECT.NUMBER, PROJECT.BUDGET) where "
            + " and ".join(conditions)
        )
        answer = engine.authorize("analyst", query)

        if expected_case is SelectionCase.DISCARD:
            result.add_check(
                f"end-to-end: {label} delivers nothing",
                answer.mask.is_empty,
            )
            description = "(discarded)"
        else:
            budget_clauses = tuple(
                clause
                for permit in answer.permits
                for clause in permit.clauses
                if "BUDGET" in clause
            )
            result.check_equal(
                f"end-to-end: {label} describes the view as expected",
                budget_clauses, expected_clauses,
            )
            description = " and ".join(expected_clauses) or "(unrestricted)"
        rows.append((label, str(case), description))

    result.add_section(
        "Stored view: budgets between 300,000 and 600,000",
        ascii_table(
            ("query selects budgets", "case", "resulting view restriction"),
            rows,
        ),
    )
    return result
