"""E10 — coverage comparison: Motro vs INGRES vs System R.

The quantitative harness Section 6 promises.  On seeded workloads, all
three models receive *the same* permissions, translated to what each
can express:

* Motro: the views as granted.
* INGRES: only the single-relation views (its structural limit); for
  those it receives the identical attribute set and qualification.
* System R: READ on a base relation only when some granted view covers
  the whole relation unconditionally (its all-or-nothing limit for
  queries addressed at base relations).

Every query is a base-relation query (the paper's usage model: "users
direct queries at the actual database").  The expected shape: Motro
delivers at least as many cells as INGRES, which delivers at least as
many as System R; Motro's surplus is exactly the partial-delivery
capability the paper contributes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.baselines.ingres import IngresModel
from repro.baselines.motro import MotroModel
from repro.baselines.system_r import SystemRModel
from repro.calculus.ast import Query
from repro.core.engine import AuthorizationEngine
from repro.experiments.result import ExperimentResult
from repro.experiments.tables import ascii_table
from repro.workloads.generator import (
    Workload,
    WorkloadGenerator,
    WorkloadSpec,
)

SEEDS = (3, 17, 59)
PROBES_PER_VIEW = 2


def translate_to_ingres(workload: Workload,
                        model: IngresModel) -> int:
    """Grant each user's single-relation views to the INGRES model.

    Returns how many views were expressible.
    """
    expressible = 0
    for user in workload.users:
        for view_name in workload.catalog.views_of(user):
            view = workload.catalog.view(view_name).definition
            relations = {ref.relation for ref in view.attr_refs()}
            occurrences = {
                ref.occurrence_key() for ref in view.attr_refs()
            }
            if len(relations) != 1 or len(occurrences) != 1:
                continue  # not expressible in INGRES
            relation = next(iter(relations))
            attributes = sorted({
                ref.attribute for ref in view.attr_refs()
            })
            model.permit(user, relation, attributes, view.conditions)
            expressible += 1
    return expressible


def translate_to_system_r(workload: Workload,
                          model: SystemRModel) -> int:
    """Grant READ on relations fully covered by an unconditional view."""
    granted = 0
    for user in workload.users:
        for view_name in workload.catalog.views_of(user):
            view = workload.catalog.view(view_name).definition
            relations = {ref.relation for ref in view.attr_refs()}
            if len(relations) != 1 or view.conditions:
                continue
            relation = next(iter(relations))
            schema = workload.database.schema.get(relation)
            covered = {ref.attribute for ref in view.target}
            if covered >= set(schema.attribute_names):
                model.grant("_dba", user, relation)
                granted += 1
    return granted


def _probe_queries(workload: Workload,
                   generator: WorkloadGenerator,
                   spec: WorkloadSpec) -> List[Query]:
    queries: List[Query] = []
    for view in workload.views:
        queries.append(Query(view.target, view.conditions))
        # Wider request over the same relations (column reduction).
        first = view.target[0]
        schema = workload.database.schema.get(first.relation)
        full = tuple(
            type(first)(first.relation, name, first.occurrence)
            for name in schema.attribute_names
        )
        queries.append(Query(full, view.conditions))
    for _ in range(PROBES_PER_VIEW * len(workload.views)):
        queries.append(generator.query(spec, workload.database.schema))
    return queries


def run() -> ExperimentResult:
    result = ExperimentResult(
        exp_id="E10",
        title="Coverage: delivered cells under equal permissions",
        paper_artifact="Section 6's promised experimentation harness",
    )

    rows = []
    totals: Dict[str, int] = {"Motro": 0, "INGRES": 0, "System R": 0}
    denials: Dict[str, int] = {"Motro": 0, "INGRES": 0, "System R": 0}
    query_count = 0

    for seed in SEEDS:
        generator = WorkloadGenerator(seed)
        spec = WorkloadSpec(seed=seed, views=4, users=2)
        workload = generator.workload(spec)

        motro = MotroModel(
            AuthorizationEngine(workload.database, workload.catalog)
        )
        ingres = IngresModel(workload.database)
        system_r = SystemRModel(workload.database)
        translate_to_ingres(workload, ingres)
        translate_to_system_r(workload, system_r)

        queries = _probe_queries(workload, generator, spec)
        per_seed = {"Motro": 0, "INGRES": 0, "System R": 0}
        for query in queries:
            for user in workload.users:
                query_count += 1
                for name, model in (
                    ("Motro", motro), ("INGRES", ingres),
                    ("System R", system_r),
                ):
                    decision = model.authorize_query(user, query)
                    per_seed[name] += decision.delivered_cells
                    if decision.delivered_cells == 0:
                        denials[name] += 1
        for name in totals:
            totals[name] += per_seed[name]
        rows.append((
            seed, per_seed["Motro"], per_seed["INGRES"],
            per_seed["System R"],
        ))

    rows.append(("TOTAL", totals["Motro"], totals["INGRES"],
                 totals["System R"]))
    result.add_section(
        "Delivered cells per seed (same permissions, same queries)",
        ascii_table(("seed", "Motro", "INGRES", "System R"), rows),
    )
    result.add_section(
        "Requests delivering nothing",
        ascii_table(
            ("model", "empty deliveries", "requests"),
            [(name, denials[name], query_count) for name in totals],
        ),
    )

    result.add_check(
        "Motro delivers at least as much as INGRES",
        totals["Motro"] >= totals["INGRES"],
        detail=str(totals),
    )
    result.add_check(
        "INGRES delivers at least as much as System R",
        totals["INGRES"] >= totals["System R"],
        detail=str(totals),
    )
    result.add_check(
        "Motro's advantage is strict (the partial-delivery capability)",
        totals["Motro"] > totals["System R"],
        detail=str(totals),
    )
    result.add_check(
        "Motro denies outright no more often than the baselines",
        denials["Motro"] <= min(denials["INGRES"], denials["System R"]),
        detail=str(denials),
    )
    return result
