"""ASCII renderers for the paper's tables.

The experiments print the same tables the paper prints: base relations
stacked with their meta-relations (Figure 1's presentation "each pair
of relations R, R' is shown as a single contiguous table"), mask
tables with the blank glyph, COMPARISON and PERMISSION.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.algebra.database import Database
from repro.meta.catalog import PermissionCatalog
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.table import MaskTable

#: Glyph used for blank meta-cells in rendered tables.
BLANK = "."


def ascii_table(headers: Sequence[str],
                rows: Iterable[Sequence[str]]) -> str:
    """A simple boxed table."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(
            c.ljust(w) for c, w in zip(cells, widths)
        ) + " |"

    rule = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out: List[str] = [rule, line(headers), rule]
    out.extend(line(row) for row in rows)
    out.append(rule)
    return "\n".join(out)


def meta_tuple_cells(meta: MetaTuple) -> Tuple[str, ...]:
    """Paper-style cells with '.' for blanks and '*' stars."""
    return tuple(
        cell.render(BLANK) if not (cell.is_blank and cell.starred)
        else "*"
        for cell in meta.cells
    )


def figure1_table(database: Database, catalog: PermissionCatalog,
                  relation: str) -> str:
    """One contiguous R / R' table as in Figure 1."""
    schema = database.schema.get(relation)
    headers = ["VIEW", *schema.attribute_names]
    rows: List[Tuple[str, ...]] = []
    for values in database.instance(relation).rows:
        rows.append(("", *(str(v) for v in values)))
    for view_name, meta in catalog.meta_relation_rows(relation):
        rows.append((view_name, *meta_tuple_cells(meta)))
    return ascii_table(headers, rows)


def comparison_table(catalog: PermissionCatalog,
                     view_names: Optional[Iterable[str]] = None) -> str:
    """The COMPARISON auxiliary relation."""
    rows = catalog.comparison_rows(view_names)
    return ascii_table(["VIEW", "X", "COMPARE", "Y"], rows)


def permission_table(catalog: PermissionCatalog) -> str:
    """The PERMISSION auxiliary relation."""
    return ascii_table(["USER", "VIEW"], catalog.permission_rows())


def mask_table(table: MaskTable, show_views: bool = False) -> str:
    """An intermediate or final A' table."""
    headers = list(table.labels())
    if show_views:
        headers = ["VIEW", *headers]
    rows = []
    for row in table.rows:
        cells = meta_tuple_cells(row.meta)
        if show_views:
            rows.append((row.meta.view_label(), *cells))
        else:
            rows.append(cells)
    return ascii_table(headers, rows)


def pruned_meta_table(relation: str, labels: Sequence[str],
                      tuples: Sequence[MetaTuple]) -> str:
    """A pruned meta-relation (the per-example Section 5 displays)."""
    headers = ["VIEW", *labels]
    rows = [
        (meta.view_label(), *meta_tuple_cells(meta)) for meta in tuples
    ]
    return ascii_table(headers, rows)
