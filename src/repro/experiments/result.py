"""Experiment results: sections of rendered tables plus pass/fail checks.

Every experiment module produces an :class:`ExperimentResult`; the
runner renders them and aggregates the checks, and EXPERIMENTS.md is
written from the same structures, so the recorded paper-vs-measured
comparison can never drift from what the code computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class Check:
    """One assertion against the paper's stated outcome."""

    description: str
    passed: bool
    detail: str = ""

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        text = f"[{status}] {self.description}"
        if self.detail and not self.passed:
            text += f"\n       {self.detail}"
        return text


@dataclass(frozen=True)
class Section:
    """A titled block of pre-rendered text (usually a table)."""

    heading: str
    body: str

    def render(self) -> str:
        underline = "-" * len(self.heading)
        return f"{self.heading}\n{underline}\n{self.body}"


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    exp_id: str
    title: str
    paper_artifact: str
    sections: List[Section] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def add_section(self, heading: str, body: str) -> None:
        self.sections.append(Section(heading, body))

    def add_check(self, description: str, passed: bool,
                  detail: str = "") -> None:
        self.checks.append(Check(description, passed, detail))

    def check_equal(self, description: str, actual: object,
                    expected: object) -> None:
        """Convenience: an equality check with a diff-style detail."""
        self.add_check(
            description,
            actual == expected,
            detail=f"expected {expected!r}, got {actual!r}",
        )

    def render(self) -> str:
        bar = "=" * 72
        lines = [
            bar,
            f"{self.exp_id}: {self.title}",
            f"(reproduces {self.paper_artifact})",
            bar,
        ]
        for section in self.sections:
            lines.append("")
            lines.append(section.render())
        if self.checks:
            lines.append("")
            lines.append("Checks")
            lines.append("------")
            lines.extend(check.render() for check in self.checks)
        status = "ALL CHECKS PASS" if self.passed else "CHECK FAILURES"
        lines.append("")
        lines.append(f">>> {self.exp_id}: {status}")
        return "\n".join(lines)
