"""``python -m repro.experiments`` — run the paper's experiments."""

import sys

from repro.experiments.runner import main

if __name__ == "__main__":
    sys.exit(main())
