"""Testing support: deterministic fault injection.

``repro.testing.faults`` provides the injection points the resilience
suites use to prove the engine's fail-closed contract.  Production code
carries the (inert) hooks; nothing here runs unless a fault plan is
installed.
"""

from repro.testing.faults import (
    SITES,
    Fault,
    FaultPlan,
    inject,
    install,
    maybe_corrupt,
    maybe_fault,
    plan_from_spec,
    uninstall,
)

__all__ = [
    "SITES",
    "Fault",
    "FaultPlan",
    "inject",
    "install",
    "maybe_corrupt",
    "maybe_fault",
    "plan_from_spec",
    "uninstall",
]
