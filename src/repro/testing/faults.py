"""Deterministic fault injection for resilience testing.

The engine's fail-closed contract — *under any internal failure the
delivered tuple set only ever shrinks* — is only worth something if it
can be exercised.  This module plants named injection points along the
whole authorize path (meta-algebra operators, the derivation cache, the
persistence layer) and lets tests trip them deterministically:

    from repro.testing import faults

    with faults.inject({"product": "raise"}):
        answer = engine.authorize("brown", query)   # never raises
    assert answer.error is not None

Injection points are inert unless a plan is installed, so the
production hot path pays one module-level ``None`` check per site.

Sites currently wired (a plan may name any subset):

    ``plan``          entry of ``derive_mask``
    ``selfjoin``      the self-join closure
    ``product``       the (padded) meta-product
    ``prune``         dangling-reference pruning
    ``selection``     each meta-selection step
    ``projection``    the final meta-projection
    ``closure``       the existential-closure excuse builder
    ``cache.get``     derivation-cache lookup
    ``cache.put``     derivation-cache store
    ``cache.entry``   the cached value itself (``corrupt`` action)
    ``engine.evaluate``  answer evaluation inside ``authorize``
    ``backend.execute``  the execution-backend hop of that same site
    ``storage.read``  snapshot reading
    ``storage.write`` snapshot writing
    ``storage.fsync`` between temp-file write and atomic rename
    ``serving.submit``  request admission in the batch server
    ``serving.batch``   batch processing in a server worker

Actions:

* ``raise`` — raise :class:`~repro.errors.FaultInjected` at the site;
* ``slow`` — simulate a slow node by charging ``seconds`` of wall time
  against the active derivation :class:`~repro.metaalgebra.budget.Budget`
  (no real sleeping, so tests stay fast and deterministic);
* ``corrupt`` — substitute ``payload`` for the value flowing through a
  ``maybe_corrupt`` site (cache corruption).

Plans are installed with the :func:`inject` context manager, or
process-wide with :func:`install` / :func:`uninstall` (the CLI's
``--faults`` switch uses the ``site:action[:arg]`` spec syntax via
:func:`plan_from_spec`).
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Union,
)

from repro.errors import FaultInjected, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metaalgebra.budget import Budget

#: Sentinel substituted by the default ``corrupt`` action.
CORRUPTED = "#corrupted#"


@dataclass
class Fault:
    """One configured failure: what to do, and how often.

    Attributes:
        action: ``"raise"``, ``"slow"``, or ``"corrupt"``.
        times: fire at most this many visits (None = every visit).
        seconds: simulated wall time charged by ``slow``.
        payload: value substituted by ``corrupt``.
    """

    action: str = "raise"
    times: Optional[int] = None
    seconds: float = 1.0
    payload: Any = CORRUPTED
    fired: int = field(default=0, compare=False)

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


class FaultPlan:
    """A set of faults keyed by site, with visit/trip accounting.

    ``visits`` counts every pass through an instrumented site while the
    plan was active; ``trips`` counts the visits where a fault actually
    fired.  Tests assert on both to prove the failure they observed is
    the one they injected.
    """

    def __init__(self, faults: Mapping[str, Union[Fault, str]]) -> None:
        self.faults: Dict[str, Fault] = {
            site: fault if isinstance(fault, Fault) else Fault(fault)
            for site, fault in faults.items()
        }
        self.visits: Counter = Counter()
        self.trips: Counter = Counter()

    # -- hooks ---------------------------------------------------------

    def visit(self, site: str, budget: Optional["Budget"] = None) -> None:
        """Called by ``maybe_fault``; may raise or charge the budget."""
        self.visits[site] += 1
        fault = self.faults.get(site)
        if fault is None or fault.exhausted():
            return
        if fault.action == "raise":
            fault.fired += 1
            self.trips[site] += 1
            raise FaultInjected(site)
        if fault.action == "slow":
            if budget is not None:
                fault.fired += 1
                self.trips[site] += 1
                budget.elapse(fault.seconds)
        # "corrupt" faults only act through maybe_corrupt.

    def corrupt(self, site: str, value: Any) -> Any:
        """Called by ``maybe_corrupt``; may substitute the payload."""
        self.visits[site] += 1
        fault = self.faults.get(site)
        if fault is None or fault.action != "corrupt" or fault.exhausted():
            return value
        fault.fired += 1
        self.trips[site] += 1
        return fault.payload


#: The active plan; module-global so the hooks cost one None check.
_PLAN: Optional[FaultPlan] = None


def maybe_fault(site: str, budget: Optional["Budget"] = None) -> None:
    """Injection point: a no-op unless a plan targets ``site``."""
    if _PLAN is not None:
        _PLAN.visit(site, budget)


def maybe_corrupt(site: str, value: Any) -> Any:
    """Value-corrupting injection point; returns ``value`` when inert."""
    if _PLAN is not None:
        return _PLAN.corrupt(site, value)
    return value


def active() -> Optional[FaultPlan]:
    """The installed plan, if any (diagnostics)."""
    return _PLAN


def install(plan: Union[FaultPlan, Mapping[str, Union[Fault, str]]]
            ) -> FaultPlan:
    """Install ``plan`` process-wide (CLI/config entry point)."""
    global _PLAN
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan(plan)
    _PLAN = plan
    return plan


def uninstall() -> None:
    """Remove any installed plan."""
    global _PLAN
    _PLAN = None


@contextmanager
def inject(plan: Union[FaultPlan, Mapping[str, Union[Fault, str]]]
           ) -> Iterator[FaultPlan]:
    """Scoped installation; restores the previous plan on exit."""
    global _PLAN
    previous = _PLAN
    installed = plan if isinstance(plan, FaultPlan) else FaultPlan(plan)
    _PLAN = installed
    try:
        yield installed
    finally:
        _PLAN = previous


def plan_from_spec(spec: str) -> FaultPlan:
    """Parse ``site:action[:arg],...`` into a plan.

    ``arg`` is ``seconds`` for ``slow`` and ``times`` for ``raise``;
    e.g. ``"selfjoin:raise:1,product:slow:0.5"``.

    Raises:
        ReproError: for unknown actions or malformed entries.
    """
    faults: Dict[str, Fault] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ReproError(f"malformed fault spec entry {entry!r}")
        site, action = parts[0], parts[1]
        if action not in ("raise", "slow", "corrupt"):
            raise ReproError(f"unknown fault action {action!r}")
        fault = Fault(action)
        if len(parts) == 3:
            try:
                if action == "slow":
                    fault.seconds = float(parts[2])
                else:
                    fault.times = int(parts[2])
            except ValueError as error:
                raise ReproError(
                    f"malformed fault spec entry {entry!r}"
                ) from error
        faults[site] = fault
    return FaultPlan(faults)
