"""Deterministic fault injection for resilience testing.

The engine's fail-closed contract — *under any internal failure the
delivered tuple set only ever shrinks* — is only worth something if it
can be exercised.  This module plants named injection points along the
whole authorize path (meta-algebra operators, the derivation cache, the
persistence layer) and lets tests trip them deterministically:

    from repro.testing import faults

    with faults.inject({"product": "raise"}):
        answer = engine.authorize("brown", query)   # never raises
    assert answer.error is not None

Injection points are inert unless a plan is installed, so the
production hot path pays one module-level ``None`` check per site.

Every wired site is registered in :data:`SITES` — the single source of
truth that plan validation, the chaos harness
(:mod:`repro.testing.chaos`), and the coverage sweep test
(``tests/test_fault_sites.py``) all read, so adding a site silently is
impossible (the PR 7 lesson).  See the table in
``docs/RESILIENCE.md`` for what each site means.

Actions:

* ``raise`` — raise :class:`~repro.errors.FaultInjected` at the site;
* ``slow`` — simulate a slow node by charging ``seconds`` of wall time
  against the active derivation :class:`~repro.metaalgebra.budget.Budget`
  (no real sleeping, so tests stay fast and deterministic);
* ``corrupt`` — substitute ``payload`` for the value flowing through a
  ``maybe_corrupt`` site (cache corruption).

A fault with ``probability < 1`` fires on a seeded coin flip per
visit instead of every visit — the chaos harness uses this to spray
sparse faults over long request streams while staying replayable: the
flip sequence depends only on ``seed`` and the visit order.

Plans are installed with the :func:`inject` context manager, or
process-wide with :func:`install` / :func:`uninstall` (the CLI's
``--faults`` switch uses the ``site:action[:arg]`` spec syntax via
:func:`plan_from_spec`).
"""

from __future__ import annotations

import random
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.errors import FaultInjected, ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.metaalgebra.budget import Budget

#: Sentinel substituted by the default ``corrupt`` action.
CORRUPTED = "#corrupted#"

#: Every injection point wired into the codebase, in authorize-path
#: order.  ``FaultPlan`` rejects plans naming anything else, and the
#: sweep test asserts each of these is exercised by at least one test.
SITES: Tuple[str, ...] = (
    # mask derivation (repro.metaalgebra)
    "plan",
    "selfjoin",
    "product",
    "prune",
    "selection",
    "projection",
    "closure",
    # derivation cache (repro.core.cache)
    "cache.get",
    "cache.put",
    "cache.entry",
    # answer evaluation (repro.core.engine / repro.resilience)
    "engine.evaluate",
    "backend.execute",
    "backend.load",
    "retry.sleep",
    "breaker.probe",
    "failover.execute",
    # persistence (repro.storage)
    "storage.read",
    "storage.write",
    "storage.fsync",
    # serving layer (repro.serving)
    "serving.submit",
    "serving.batch",
)


@dataclass
class Fault:
    """One configured failure: what to do, and how often.

    Attributes:
        action: ``"raise"``, ``"slow"``, or ``"corrupt"``.
        times: fire at most this many visits (None = every visit).
        seconds: simulated wall time charged by ``slow``.
        payload: value substituted by ``corrupt``.
        probability: chance of firing per eligible visit.  1.0 (the
            default) fires deterministically on every visit; anything
            lower flips a coin from a private ``random.Random(seed)``
            stream, so the fire pattern is a pure function of the seed
            and the visit order — the chaos harness replays runs by
            replaying both.
        seed: seeds the coin-flip stream (ignored at probability 1.0).
    """

    action: str = "raise"
    times: Optional[int] = None
    seconds: float = 1.0
    payload: Any = CORRUPTED
    probability: float = 1.0
    seed: int = 0
    fired: int = field(default=0, compare=False)
    _rng: Optional[random.Random] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"fault probability must be in [0, 1]: {self.probability}"
            )

    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times

    def should_fire(self) -> bool:
        """Flip the (seeded) coin for this visit."""
        if self.probability >= 1.0:
            return True
        if self._rng is None:
            self._rng = random.Random(self.seed)
        return self._rng.random() < self.probability


class FaultPlan:
    """A set of faults keyed by site, with visit/trip accounting.

    ``visits`` counts every pass through an instrumented site while the
    plan was active; ``trips`` counts the visits where a fault actually
    fired.  Tests assert on both to prove the failure they observed is
    the one they injected.
    """

    def __init__(self, faults: Mapping[str, Union[Fault, str]]) -> None:
        unknown = sorted(set(faults) - set(SITES))
        if unknown:
            raise ReproError(
                f"unknown fault site(s) {unknown}; "
                f"registered sites are listed in repro.testing.faults.SITES"
            )
        self.faults: Dict[str, Fault] = {
            site: fault if isinstance(fault, Fault) else Fault(fault)
            for site, fault in faults.items()
        }
        self.visits: Counter = Counter()
        self.trips: Counter = Counter()

    # -- hooks ---------------------------------------------------------

    def visit(self, site: str, budget: Optional["Budget"] = None) -> None:
        """Called by ``maybe_fault``; may raise or charge the budget."""
        self.visits[site] += 1
        fault = self.faults.get(site)
        if fault is None or fault.exhausted():
            return
        if fault.action == "raise":
            if not fault.should_fire():
                return
            fault.fired += 1
            self.trips[site] += 1
            raise FaultInjected(site)
        if fault.action == "slow":
            if budget is not None and fault.should_fire():
                fault.fired += 1
                self.trips[site] += 1
                budget.elapse(fault.seconds)
        # "corrupt" faults only act through maybe_corrupt.

    def corrupt(self, site: str, value: Any) -> Any:
        """Called by ``maybe_corrupt``; may substitute the payload."""
        self.visits[site] += 1
        fault = self.faults.get(site)
        if fault is None or fault.action != "corrupt" or fault.exhausted():
            return value
        if not fault.should_fire():
            return value
        fault.fired += 1
        self.trips[site] += 1
        return fault.payload


#: The active plan; module-global so the hooks cost one None check.
_PLAN: Optional[FaultPlan] = None


def maybe_fault(site: str, budget: Optional["Budget"] = None) -> None:
    """Injection point: a no-op unless a plan targets ``site``."""
    if _PLAN is not None:
        _PLAN.visit(site, budget)


def maybe_corrupt(site: str, value: Any) -> Any:
    """Value-corrupting injection point; returns ``value`` when inert."""
    if _PLAN is not None:
        return _PLAN.corrupt(site, value)
    return value


def active() -> Optional[FaultPlan]:
    """The installed plan, if any (diagnostics)."""
    return _PLAN


def install(plan: Union[FaultPlan, Mapping[str, Union[Fault, str]]]
            ) -> FaultPlan:
    """Install ``plan`` process-wide (CLI/config entry point)."""
    global _PLAN
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan(plan)
    _PLAN = plan
    return plan


def uninstall() -> None:
    """Remove any installed plan."""
    global _PLAN
    _PLAN = None


@contextmanager
def inject(plan: Union[FaultPlan, Mapping[str, Union[Fault, str]]]
           ) -> Iterator[FaultPlan]:
    """Scoped installation; restores the previous plan on exit."""
    global _PLAN
    previous = _PLAN
    installed = plan if isinstance(plan, FaultPlan) else FaultPlan(plan)
    _PLAN = installed
    try:
        yield installed
    finally:
        _PLAN = previous


def plan_from_spec(spec: str) -> FaultPlan:
    """Parse ``site:action[:arg],...`` into a plan.

    ``arg`` is ``seconds`` for ``slow`` and ``times`` for ``raise``;
    e.g. ``"selfjoin:raise:1,product:slow:0.5"``.

    Raises:
        ReproError: for unknown actions or malformed entries.
    """
    faults: Dict[str, Fault] = {}
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ReproError(f"malformed fault spec entry {entry!r}")
        site, action = parts[0], parts[1]
        if action not in ("raise", "slow", "corrupt"):
            raise ReproError(f"unknown fault action {action!r}")
        fault = Fault(action)
        if len(parts) == 3:
            try:
                if action == "slow":
                    fault.seconds = float(parts[2])
                else:
                    fault.times = int(parts[2])
            except ValueError as error:
                raise ReproError(
                    f"malformed fault spec entry {entry!r}"
                ) from error
        faults[site] = fault
    return FaultPlan(faults)
