"""Chaos soak harness: randomized faults under concurrent traffic.

Unit tests trip one fault site at a time; the chaos harness asks the
question production asks — what happens when *sparse, random* failures
land across the whole stack at once, under concurrency, for thousands
of requests?  The answer must be the fail-closed contract, observed
end to end:

* **Parity** — every clean answer (no error, no degradation) is
  byte-identical to the faultless serial replay of the same client's
  ops (:func:`repro.workloads.traffic.replay_serial`).  Failover does
  not get a tolerance: the mask is backend-independent, so an answer
  evaluated on the oracle after a breaker trip must equal the
  primary's answer exactly.
* **Soundness** — every other answer (degraded, failed over while
  degraded, failed closed) delivers a *subset* of the clean answer's
  visible cells.  Chaos may hide data; it must never reveal it.
* **Gapless audit** — one record per answered request, contiguously
  numbered: concurrency plus faults never drop or duplicate a trail
  entry.
* **Goodput** — the fraction of requests answered without an error
  stays high, because retry, failover, and the degradation ladder
  absorb most faults instead of failing closed.

A :class:`ChaosSpec` is fully seed-determined: the traffic script, the
per-site fault coins (:class:`~repro.testing.faults.Fault` with
``probability``/``seed``), and the serial oracle all derive from the
seed, so a failing soak replays exactly.  The harness drives its own
closed-loop clients (rather than
:func:`~repro.workloads.traffic.drive_server`) because a fault at the
``serving.submit`` site raises *into the submitting client*; the
harness records those as rejections and keeps the op/answer alignment
the parity check needs.

``tests/integration/test_chaos_soak.py`` runs a short soak on every
PR and a 10^4-request soak nightly, writing ``BENCH_PR8.json``.
"""

from __future__ import annotations

import random
import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.answer import AuthorizedAnswer
from repro.core.mask import MASKED
from repro.errors import FaultInjected
from repro.serving.server import AuthorizationServer, ServerConfig
from repro.testing import faults
from repro.testing.faults import SITES, Fault, FaultPlan
from repro.workloads.traffic import (
    TrafficScript,
    TrafficSpec,
    build_traffic,
    fresh_stack,
    replay_serial,
)

#: Sites wired through ``maybe_corrupt``: their chaos action is
#: payload substitution, not an exception.
CORRUPT_SITES = frozenset({"cache.entry"})

#: Sites whose faults charge the derivation budget (simulated slow
#: nodes) — the chaos coin picks ``slow`` for half of these so the
#: ladder's budget path is soaked too.
BUDGET_SITES = frozenset({
    "plan", "selfjoin", "product", "prune", "selection", "projection",
    "closure",
})


@dataclass(frozen=True)
class ChaosSpec:
    """One fully seed-determined soak run."""

    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    #: Seeds the per-site fault coins (the traffic script has its own
    #: seed inside ``traffic``).
    seed: int = 0
    #: Per-visit fire probability at every site but the backend.
    fault_probability: float = 5e-4
    #: Per-visit fire probability at ``backend.execute`` — much
    #: higher, because retry and oracle failover make this site
    #: survivable and the soak exists to prove it (both retry attempts
    #: must fire for a request to fail over, so failovers arrive at
    #: roughly this probability squared).
    backend_fault_probability: float = 5e-2
    #: Fault sites to schedule (defaults to every registered site).
    sites: Tuple[str, ...] = SITES
    #: The tenant's primary backend.  SQLite by default so the
    #: retry → breaker → oracle-failover path is actually reachable
    #: (a python primary *is* the oracle and can only fail closed).
    backend: str = "sqlite"
    #: Serving-layer shape.
    workers: int = 4
    max_batch: int = 8
    request_deadline_ms: float = 0.0

    def __post_init__(self) -> None:
        for name in ("fault_probability", "backend_fault_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        if not 1 <= self.workers:
            raise ValueError(f"need at least one worker: {self.workers}")
        unknown = sorted(set(self.sites) - set(SITES))
        if unknown:
            raise ValueError(f"unknown fault site(s): {unknown}")


def fault_schedule(spec: ChaosSpec) -> FaultPlan:
    """The seed-determined fault plan for one soak run.

    Every requested site gets a probabilistic fault whose action fits
    the site (corrupt at ``maybe_corrupt`` sites, a raise/slow coin at
    budget-charged derivation sites, raise elsewhere); the per-fault
    coin seeds derive from ``spec.seed``, so the fire pattern is a
    pure function of the spec and the visit order.
    """
    rng = random.Random(spec.seed)
    plan: Dict[str, Fault] = {}
    for site in spec.sites:
        probability = (
            spec.backend_fault_probability
            if site == "backend.execute" else spec.fault_probability
        )
        if site in CORRUPT_SITES:
            action = "corrupt"
        elif site in BUDGET_SITES and rng.random() < 0.5:
            action = "slow"
        else:
            action = "raise"
        plan[site] = Fault(
            action, probability=probability,
            seed=rng.randrange(2 ** 32), seconds=5.0,
        )
    return FaultPlan(plan)


@dataclass(frozen=True)
class ChaosReport:
    """What one soak observed, ready for assertion or JSON export."""

    requests: int
    answered: int
    submit_rejected: int
    clean: int
    degraded: int
    failed_closed: int
    failovers: int
    goodput: float
    parity_violations: Tuple[str, ...]
    unsound: Tuple[str, ...]
    audit_records: int
    audit_gapless: bool
    fault_visits: int
    fault_trips: int
    trips_by_site: Tuple[Tuple[str, int], ...]
    workers: int

    def ok(self, goodput_floor: float = 0.99) -> bool:
        """The soak's pass criterion."""
        return (
            not self.parity_violations
            and not self.unsound
            and self.audit_gapless
            and self.goodput >= goodput_floor
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "answered": self.answered,
            "submit_rejected": self.submit_rejected,
            "clean": self.clean,
            "degraded": self.degraded,
            "failed_closed": self.failed_closed,
            "failovers": self.failovers,
            "goodput": round(self.goodput, 6),
            "parity_violations": len(self.parity_violations),
            "unsound_answers": len(self.unsound),
            "audit_records": self.audit_records,
            "audit_gapless": self.audit_gapless,
            "fault_visits": self.fault_visits,
            "fault_trips": self.fault_trips,
            "trips_by_site": dict(self.trips_by_site),
            "workers": self.workers,
        }


def _visible_cells(
    answer: AuthorizedAnswer,
) -> Set[Tuple[int, int, object]]:
    return {
        (i, j, cell)
        for i, row in enumerate(answer.delivered)
        for j, cell in enumerate(row)
        if cell is not MASKED
    }


def _drive_with_faults(
    script: TrafficScript,
    server: AuthorizationServer,
    tenant: str,
) -> List[List[Optional[AuthorizedAnswer]]]:
    """Closed-loop clients that survive ``serving.submit`` faults.

    Returns one slot per scripted *query* op, in script order:
    the answer, or ``None`` where the submit itself was rejected by an
    injected fault (the op never entered the system).
    """
    engine = server.tenants.get(tenant).engine
    outcomes: List[List[Optional[AuthorizedAnswer]]] = [
        [None] * sum(1 for op in ops if op.kind == "query")
        for ops in script.clients
    ]
    failures: List[BaseException] = []

    def run_client(index: int) -> None:
        slot = 0
        try:
            for op in script.clients[index]:
                if op.kind == "query":
                    assert op.query is not None
                    try:
                        future = server.submit(tenant, op.user,
                                               op.query)
                    except FaultInjected:
                        outcomes[index][slot] = None
                    else:
                        outcomes[index][slot] = future.result()
                    slot += 1
                elif op.kind == "permit":
                    engine.permit(op.view, op.user)
                else:
                    engine.revoke(op.view, op.user)
        except BaseException as error:  # pragma: no cover - reported
            failures.append(error)
            raise

    threads = [
        threading.Thread(
            target=run_client, args=(index,),
            name=f"chaos-client-{index}", daemon=True,
        )
        for index in range(len(script.clients))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]
    return outcomes


def run_chaos(spec: ChaosSpec) -> ChaosReport:
    """One soak: script, faultless oracle, faulted drive, verdicts."""
    script = build_traffic(spec.traffic)
    # The serial oracle replays *without* faults: it defines what the
    # chaos run's clean answers must equal and what every other answer
    # must stay inside.
    oracle = replay_serial(script)
    workload = fresh_stack(spec.traffic)
    plan = fault_schedule(spec)
    server = AuthorizationServer(ServerConfig(
        workers=spec.workers,
        max_batch=spec.max_batch,
        audit_capacity=None,  # keep everything: the trail is asserted
        request_deadline_ms=spec.request_deadline_ms,
    ))
    server.add_tenant("chaos", workload.database, workload.catalog,
                      backend=spec.backend)
    try:
        with faults.inject(plan):
            outcomes = _drive_with_faults(script, server, "chaos")
    finally:
        server.close()

    answered = submit_rejected = clean = degraded = 0
    failed_closed = failovers = 0
    parity: List[str] = []
    unsound: List[str] = []
    for client, (got_ops, want_ops) in enumerate(zip(outcomes, oracle)):
        for op, (got, want) in enumerate(zip(got_ops, want_ops)):
            where = f"client {client} op {op} ({want.user})"
            if got is None:
                submit_rejected += 1
                continue
            answered += 1
            if got.failed_over:
                failovers += 1
            if got.error is not None:
                failed_closed += 1
                if got.delivered != ():
                    unsound.append(
                        f"{where}: failed closed yet delivered "
                        f"{len(got.delivered)} rows"
                    )
                continue
            if got.degradation_level == 0:
                clean += 1
                # Relations have set semantics and backends do not
                # promise a row order, so parity is multiset equality
                # of the delivered tuples (exact shape and values).
                if got.user != want.user or \
                        Counter(got.delivered) \
                        != Counter(want.delivered):
                    parity.append(
                        f"{where}: clean answer differs from serial "
                        f"replay"
                    )
            else:
                degraded += 1
                extra = _visible_cells(got) - _visible_cells(want)
                if extra:
                    unsound.append(
                        f"{where}: degraded answer revealed "
                        f"{len(extra)} cells outside the clean answer"
                    )

    audit = server.tenants.get("chaos").audit
    assert audit is not None
    sequences = [record.sequence for record in audit.records()]
    gapless = (
        len(sequences) == answered
        and sequences == list(range(1, len(sequences) + 1))
    )
    requests = script.total_queries
    return ChaosReport(
        requests=requests,
        answered=answered,
        submit_rejected=submit_rejected,
        clean=clean,
        degraded=degraded,
        failed_closed=failed_closed,
        failovers=failovers,
        goodput=(clean + degraded) / requests if requests else 1.0,
        parity_violations=tuple(parity),
        unsound=tuple(unsound),
        audit_records=len(sequences),
        audit_gapless=gapless,
        fault_visits=sum(plan.visits.values()),
        fault_trips=sum(plan.trips.values()),
        trips_by_site=tuple(sorted(
            (site, count) for site, count in plan.trips.items()
        )),
        workers=spec.workers,
    )


__all__ = [
    "BUDGET_SITES",
    "CORRUPT_SITES",
    "ChaosReport",
    "ChaosSpec",
    "fault_schedule",
    "run_chaos",
]
