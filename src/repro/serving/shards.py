"""A lock-striped, sharded derivation cache for concurrent serving.

One :class:`~repro.core.cache.DerivationCache` is already thread-safe,
but every worker thread then contends on a single lock.  The serving
layer instead stripes the key space over ``shards`` independent caches,
each with its own lock: a lookup touches exactly one shard, so threads
probing different keys never contend.  The shard index is derived from
``hash((user, plan_key))`` — process-local, which is fine because shard
placement is pure bookkeeping and never leaves the process.

The security-critical invariant is untouched by sharding: a given
``(user, plan_key)`` always maps to the same shard, and each shard
enforces the token-match rule of the underlying cache, so a stale
derivation is exactly as unservable here as in the single-lock cache.
``tests/property/test_concurrent_cache.py`` checks both the model
equivalence and the no-stale-serve property under real thread
interleavings.

Capacity is divided evenly between shards (rounded up), so eviction is
per-shard LRU rather than global LRU — a deliberately accepted
difference: a hot key can only be evicted by traffic on its own shard,
and total occupancy stays within ``shards`` rounding slots of the
configured capacity.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.cache import CacheStats, CacheToken, DerivationCache
from repro.metaalgebra.canonical import PlanKey
from repro.metaalgebra.plan import MaskDerivation

#: Default number of lock stripes; enough that 8-16 worker threads
#: rarely collide, small enough that per-shard LRU stays meaningful.
DEFAULT_SHARDS = 8


class ShardedDerivationCache:
    """Lock-striped implementation of
    :class:`~repro.core.cache.DerivationCacheLike`.

    Capacity 0 (or negative) disables caching entirely, exactly like
    the single-lock cache.  ``stats`` aggregates the per-shard
    counters; the aggregate is a consistent *sum* but not a single
    atomic snapshot across shards (each shard's counters are read
    under that shard's lock).
    """

    def __init__(self, capacity: int = 1024,
                 shards: int = DEFAULT_SHARDS) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.capacity = capacity
        per_shard = -(-capacity // shards) if capacity > 0 else 0
        self._shards: Tuple[DerivationCache, ...] = tuple(
            DerivationCache(per_shard) for _ in range(shards)
        )

    # ------------------------------------------------------------------
    # shard routing
    # ------------------------------------------------------------------

    def _shard(self, user: str, plan_key: PlanKey) -> DerivationCache:
        """The one shard responsible for ``(user, plan_key)``."""
        return self._shards[
            hash((user, plan_key)) % len(self._shards)
        ]

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    # ------------------------------------------------------------------
    # the DerivationCacheLike surface
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def stats(self) -> CacheStats:
        """Counter-wise sum of the per-shard statistics."""
        return CacheStats.merged(
            shard.stats for shard in self._shards
        )

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def get(self, user: str, plan_key: PlanKey,
            token: CacheToken) -> Optional[MaskDerivation]:
        if not self.enabled:
            return None
        return self._shard(user, plan_key).get(user, plan_key, token)

    def put(self, user: str, plan_key: PlanKey, token: CacheToken,
            derivation: MaskDerivation) -> None:
        if not self.enabled:
            return
        self._shard(user, plan_key).put(user, plan_key, token,
                                        derivation)

    def get_compiled(self, user: str, plan_key: PlanKey,
                     token: CacheToken) -> Optional[object]:
        if not self.enabled:
            return None
        return self._shard(user, plan_key).get_compiled(
            user, plan_key, token
        )

    def put_compiled(self, user: str, plan_key: PlanKey,
                     token: CacheToken, compiled: object) -> None:
        if not self.enabled:
            return
        self._shard(user, plan_key).put_compiled(
            user, plan_key, token, compiled
        )

    def invalidate_user(self, user: str) -> None:
        for shard in self._shards:
            shard.invalidate_user(user)

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def users(self) -> Tuple[str, ...]:
        """Distinct users with live entries, in first-seen shard order."""
        seen: Dict[str, None] = {}
        for shard in self._shards:
            for user in shard.users():
                seen.setdefault(user)
        return tuple(seen)
