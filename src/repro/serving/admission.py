"""Admission control: overload sheds fidelity instead of queueing.

A serving layer that queues unboundedly converts overload into
unbounded latency and memory; one that drops requests converts it into
availability loss.  The degradation ladder offers a third option that
fits this codebase's fail-closed philosophy: under pressure, keep
answering but derive masks at a cheaper rung.  Degraded masks are
subsets of the full-fidelity mask (``tests/property/
test_degradation_ladder.py``), so shedding can only *narrow* what a
request delivers — overload never widens access.

:class:`AdmissionPolicy` maps queue backlog to a degradation floor:
below the first threshold requests run at full fidelity; each threshold
crossed raises the floor one rung; at the last threshold (the hard
limit) new requests are denied outright with the EMPTY rung rather
than enqueued.  :class:`AdmissionController` is the thread-safe
backlog counter that applies a policy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.metaalgebra.ladder import EMPTY_LEVEL


@dataclass(frozen=True)
class AdmissionPolicy:
    """Backlog thresholds at which the degradation floor rises.

    ``shed_thresholds[i]`` is the backlog at which the floor becomes
    ``i + 1``; the last threshold is the hard limit beyond which
    requests are refused (answered with the EMPTY rung, synchronously,
    without consuming a queue slot).  Thresholds must be positive and
    strictly increasing.

    ``breaker_floor`` is the *per-tenant* floor imposed while a
    tenant's circuit breaker is open: that tenant is running on oracle
    failover, so its batches derive masks at a cheaper rung to shed
    the extra in-process load — without raising the floor of any
    healthy tenant (breaker state is per tenant, and so is this
    floor).
    """

    shed_thresholds: Tuple[int, ...] = (64, 128, 192, 256)
    breaker_floor: int = 1

    def __post_init__(self) -> None:
        if not self.shed_thresholds:
            raise ValueError("need at least one shed threshold")
        if any(t <= 0 for t in self.shed_thresholds):
            raise ValueError(
                f"thresholds must be positive: {self.shed_thresholds}"
            )
        if any(b <= a for a, b in zip(self.shed_thresholds,
                                      self.shed_thresholds[1:])):
            raise ValueError(
                "thresholds must be strictly increasing: "
                f"{self.shed_thresholds}"
            )
        if not 0 <= self.breaker_floor <= EMPTY_LEVEL:
            raise ValueError(
                f"breaker floor must be a ladder rung: "
                f"{self.breaker_floor}"
            )

    @property
    def hard_limit(self) -> int:
        """Backlog at which new requests are refused outright."""
        return self.shed_thresholds[-1]

    def floor_for(self, backlog: int) -> int:
        """The degradation floor a request admitted at ``backlog``
        runs at (0 = full fidelity, clamped to the EMPTY rung)."""
        crossed = sum(
            1 for t in self.shed_thresholds if backlog >= t
        )
        return min(crossed, EMPTY_LEVEL)


@dataclass(frozen=True)
class AdmissionSnapshot:
    """A consistent point-in-time view of a controller's counters."""

    backlog: int
    max_backlog: int
    admitted: int
    completed: int
    hard_sheds: int
    #: ``soft_sheds[i]`` counts requests drained with floor ``i + 1``
    #: (index 0 = rung 1, ... index EMPTY_LEVEL - 1 = the EMPTY rung
    #: reached through backlog rather than the hard limit).
    soft_sheds: Tuple[int, ...] = field(
        default_factory=lambda: (0,) * EMPTY_LEVEL
    )
    #: Requests degraded because their per-request deadline passed
    #: before a worker drained them.
    deadline_sheds: int = 0
    #: Tenants currently under a non-zero breaker-imposed floor.
    tenant_floors: Tuple[Tuple[str, int], ...] = ()

    @property
    def shed_total(self) -> int:
        return self.hard_sheds + sum(self.soft_sheds) \
            + self.deadline_sheds


class AdmissionController:
    """Thread-safe backlog accounting for one server.

    ``admit()`` reserves a queue slot (or refuses at the hard limit);
    ``release(n)`` returns slots when requests complete; ``floor()``
    reads the *current* degradation floor — the server calls it at
    drain time, not admit time, so the floor reflects pressure when
    the work actually runs and recovery is immediate once the backlog
    drains.
    """

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        self._backlog = 0
        self._max_backlog = 0
        self._admitted = 0
        self._completed = 0
        self._hard_sheds = 0
        self._soft_sheds = [0] * EMPTY_LEVEL
        self._deadline_sheds = 0
        #: Tenant name -> breaker-imposed floor (only non-zero kept).
        self._tenant_floors: Dict[str, int] = {}

    def admit(self) -> bool:
        """Reserve a slot; ``False`` means hard-shed (queue full)."""
        with self._lock:
            if self._backlog >= self.policy.hard_limit:
                self._hard_sheds += 1
                return False
            self._backlog += 1
            self._admitted += 1
            if self._backlog > self._max_backlog:
                self._max_backlog = self._backlog
            return True

    def release(self, count: int = 1) -> None:
        """Return ``count`` slots after requests complete."""
        if count < 0:
            raise ValueError(f"cannot release {count} slots")
        with self._lock:
            self._backlog -= count
            self._completed += count
            if self._backlog < 0:  # pragma: no cover - accounting bug
                raise AssertionError(
                    f"admission backlog went negative: {self._backlog}"
                )

    def floor(self, exclude: int = 0) -> int:
        """The degradation floor for work drained right now.

        ``exclude`` subtracts the batch being drained from the
        backlog: the floor measures pressure *besides* the work in
        hand, so a lone request on an otherwise idle server always
        runs at full fidelity.
        """
        with self._lock:
            waiting = max(0, self._backlog - exclude)
            return self.policy.floor_for(waiting)

    def note_shed(self, floor: int, count: int = 1) -> None:
        """Record ``count`` requests drained at degraded ``floor``."""
        if floor <= 0:
            return
        index = min(floor, EMPTY_LEVEL) - 1
        with self._lock:
            self._soft_sheds[index] += count

    def note_deadline_shed(self, count: int = 1) -> None:
        """Record ``count`` requests degraded for missing their
        deadline."""
        with self._lock:
            self._deadline_sheds += count

    def set_tenant_floor(self, tenant: str, floor: int) -> None:
        """Impose (or, at 0, lift) a per-tenant degradation floor.

        The server calls this with the breaker-derived floor each time
        it drains one of the tenant's batches, so the floor tracks
        breaker state automatically and clears as soon as the breaker
        closes.  Only the named tenant is affected — the cluster-wide
        backlog floor is separate and composes by ``max``.
        """
        if not 0 <= floor <= EMPTY_LEVEL:
            raise ValueError(f"floor must be a ladder rung: {floor}")
        with self._lock:
            if floor == 0:
                self._tenant_floors.pop(tenant, None)
            else:
                self._tenant_floors[tenant] = floor

    def tenant_floor(self, tenant: str) -> int:
        """The breaker-imposed floor for ``tenant`` (0 = none)."""
        with self._lock:
            return self._tenant_floors.get(tenant, 0)

    def snapshot(self) -> AdmissionSnapshot:
        with self._lock:
            return AdmissionSnapshot(
                backlog=self._backlog,
                max_backlog=self._max_backlog,
                admitted=self._admitted,
                completed=self._completed,
                hard_sheds=self._hard_sheds,
                soft_sheds=tuple(self._soft_sheds),
                deadline_sheds=self._deadline_sheds,
                tenant_floors=tuple(
                    sorted(self._tenant_floors.items())
                ),
            )
