"""Concurrent multi-tenant authorization serving.

The serving layer fronts :class:`~repro.core.engine.AuthorizationEngine`
with a thread-pool batch server (:mod:`repro.serving.server`), a
lock-striped sharded derivation cache (:mod:`repro.serving.shards`),
per-tenant isolation (:mod:`repro.serving.tenants`), and admission
control that sheds fidelity down the degradation ladder instead of
queueing unboundedly (:mod:`repro.serving.admission`).  See
docs/SERVING.md for the architecture and its soundness arguments.
"""

from repro.serving.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionSnapshot,
)
from repro.serving.server import (
    AuthorizationServer,
    ServerConfig,
    ServerTelemetry,
)
from repro.serving.shards import ShardedDerivationCache
from repro.serving.tenants import Tenant, TenantRegistry

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionSnapshot",
    "AuthorizationServer",
    "ServerConfig",
    "ServerTelemetry",
    "ShardedDerivationCache",
    "Tenant",
    "TenantRegistry",
]
