"""A thread-pool batch server fronting ``AuthorizationEngine``.

The server turns the engine's single-caller API into a concurrent,
multi-tenant service with three load-bearing properties:

**Batching, not just threading.**  Requests are queued per
``(tenant, user)`` and drained in batches through
:meth:`~repro.core.engine.AuthorizationEngine.authorize_batch`, whose
plan-key memo runs parsing, evaluation, mask derivation, and permit
inference once per distinct canonical plan in the batch.  Under a
skewed (Zipf) workload most of a batch collapses onto a few plans, so
throughput scales well past what thread parallelism alone could give
a GIL-bound process.

**Fail-closed per request.**  A fault while processing a batch denies
the affected requests (empty mask, ``error`` set) and touches nothing
else: neighbours in the batch, other tenants, and the shared caches
are unaffected.  The deterministic fault sites ``serving.submit`` and
``serving.batch`` (:mod:`repro.testing.faults`) let tests drive this
path on demand.

**Overload sheds fidelity, never soundness.**  An
:class:`~repro.serving.admission.AdmissionController` maps backlog to
a degradation floor read at *drain* time; overloaded batches derive
masks at a cheaper ladder rung (each a subset of the full mask), and
past the hard limit requests are answered immediately with the EMPTY
rung instead of queueing unboundedly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from types import TracebackType
from typing import Deque, Dict, List, Optional, Set, Tuple, Union

from repro.algebra.database import Database
from repro.calculus.ast import Query
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.core.answer import AuthorizedAnswer
from repro.core.audit import AuditLog
from repro.core.cache import CacheStats
from repro.core.engine import AuthorizationEngine
from repro.errors import ReproError, ServingError
from repro.meta.catalog import PermissionCatalog
from repro.serving.admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionSnapshot,
)
from repro.resilience.breaker import OPEN
from repro.serving.shards import ShardedDerivationCache
from repro.serving.tenants import Tenant, TenantRegistry
from repro.testing.faults import maybe_fault

_BatchKey = Tuple[str, str]  # (tenant, user)


@dataclass(frozen=True)
class ServerConfig:
    """Tuning knobs of an :class:`AuthorizationServer`."""

    #: Worker threads draining the request queues.
    workers: int = 4
    #: Largest batch drained through ``authorize_batch`` at once.
    max_batch: int = 32
    #: How long a freshly scheduled queue may wait to fill before a
    #: worker drains it (milliseconds).  0 drains on arrival; a few
    #: milliseconds lets closed-loop bursts coalesce into large
    #: plan-duplicated batches (the queue is drained early the moment
    #: it reaches ``max_batch``, and lingering never delays shutdown).
    batch_linger_ms: float = 0.0
    #: Per-tenant derivation-cache capacity (0 disables caching).
    cache_capacity: int = 1024
    #: Lock stripes per tenant cache.
    cache_shards: int = 8
    #: Backlog thresholds for admission control.
    admission: AdmissionPolicy = AdmissionPolicy()
    #: Per-tenant audit-trail capacity (None keeps every record;
    #: 0 disables auditing entirely).
    audit_capacity: Optional[int] = 4096
    #: Engine configuration for tenants the server constructs.
    engine: EngineConfig = DEFAULT_CONFIG
    #: Per-request budget, measured from admission (milliseconds;
    #: 0 disables deadlines).  A request still queued when its budget
    #: runs out is *not* left to stall the drainer at full cost: it is
    #: answered at ``deadline_floor`` instead.
    request_deadline_ms: float = 0.0
    #: Ladder rung for deadline-expired requests.  The default EMPTY
    #: rung answers them immediately without evaluating (the caller
    #: has likely stopped waiting); a lower rung trades some drainer
    #: time for a partial answer.
    deadline_floor: int = 4

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"need at least one worker: {self.workers}")
        if self.max_batch < 1:
            raise ValueError(f"need max_batch >= 1: {self.max_batch}")
        if self.batch_linger_ms < 0:
            raise ValueError(
                f"linger cannot be negative: {self.batch_linger_ms}"
            )
        if self.request_deadline_ms < 0:
            raise ValueError(
                f"deadline cannot be negative: {self.request_deadline_ms}"
            )
        if not 1 <= self.deadline_floor <= 4:
            raise ValueError(
                f"deadline floor must be a non-zero ladder rung: "
                f"{self.deadline_floor}"
            )


@dataclass
class _Pending:
    """One queued request: the statement and its promised answer."""

    query: Union[Query, str]
    future: "Future[AuthorizedAnswer]" = field(default_factory=Future)
    #: Monotonic timestamp past which this request is deadline-expired
    #: (None = no deadline configured).
    deadline: Optional[float] = None


@dataclass(frozen=True)
class ServerTelemetry:
    """Point-in-time operational counters of a server."""

    served: int
    batches: int
    batched_requests: int
    largest_batch: int
    admission: AdmissionSnapshot
    cache_stats: Dict[str, CacheStats]

    @property
    def mean_batch(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.batched_requests / self.batches


class AuthorizationServer:
    """Concurrent multi-tenant front end over authorization engines.

    Lock ordering: the server's condition (``_work``) may be held while
    taking the admission controller's lock, never the reverse.  Engine
    and cache locks are leaves — nothing is held when they are taken.
    This discipline is machine-checked: the fields ``_work`` guards and
    the permitted acquisition order are declared in
    ``repro.analysis.registry`` (``GUARDED_FIELDS`` / ``LOCK_ORDER``)
    and enforced by soundlint rule SL011.
    """

    def __init__(self, config: ServerConfig = ServerConfig()) -> None:
        self.config = config
        self.tenants = TenantRegistry()
        self._admission = AdmissionController(config.admission)
        self._work = threading.Condition()
        self._queues: Dict[_BatchKey, Deque[_Pending]] = {}
        self._ready: Deque[_BatchKey] = deque()
        self._scheduled: Set[_BatchKey] = set()
        # Keys currently being drained by a worker.  Exactly one
        # worker drains a given (tenant, user) at a time: requests
        # arriving meanwhile accumulate in the queue and drain as one
        # batch when the worker finishes — this is what forms the
        # large plan-duplicated batches the throughput story rests on
        # (and it keeps each user's requests in FIFO order).
        self._busy: Set[_BatchKey] = set()
        # When each ready key was scheduled (only tracked when the
        # config lingers): a worker leaves the key to fill until it
        # reaches ``max_batch`` or its linger deadline passes.
        self._stamps: Dict[_BatchKey, float] = {}
        self._closing = False
        self._served = 0
        self._batches = 0
        self._batched_requests = 0
        self._largest_batch = 0
        self._workers = tuple(
            threading.Thread(
                target=self._worker_loop,
                name=f"authz-worker-{index}",
                daemon=True,
            )
            for index in range(config.workers)
        )
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # tenant management
    # ------------------------------------------------------------------

    def add_tenant(
        self,
        name: str,
        database: Database,
        catalog: Optional[PermissionCatalog] = None,
        backend: Optional[str] = None,
    ) -> Tenant:
        """Create and register a tenant with a serving-grade engine:
        a lock-striped sharded derivation cache and its own audit
        trail, fully isolated from every other tenant.

        ``backend`` overrides the server-wide execution backend for
        this tenant only (see ``EngineConfig.backend``), so a fleet
        can mix in-process and SQL-backed tenants; each tenant gets
        its own backend instance either way.  Unknown or unavailable
        backend names fail here, synchronously, never at request time.
        """
        audit: Optional[AuditLog] = None
        if self.config.audit_capacity is None \
                or self.config.audit_capacity > 0:
            audit = AuditLog(self.config.audit_capacity)
        engine_config = self.config.engine
        if backend is not None:
            engine_config = engine_config.but(backend=backend)
        engine = AuthorizationEngine(
            database,
            catalog=catalog,
            config=engine_config,
            audit=audit,
            derivation_cache=ShardedDerivationCache(
                self.config.cache_capacity, self.config.cache_shards
            ),
        )
        return self.tenants.add(Tenant(name=name, engine=engine))

    def adopt_tenant(self, name: str,
                     engine: AuthorizationEngine) -> Tenant:
        """Register an existing engine (e.g. a scenario's) as a
        tenant.  The engine keeps whatever cache and audit log it was
        built with."""
        return self.tenants.add(Tenant(name=name, engine=engine))

    # ------------------------------------------------------------------
    # the data plane
    # ------------------------------------------------------------------

    def submit(self, tenant: str, user: str,
               query: Union[Query, str]) -> "Future[AuthorizedAnswer]":
        """Enqueue one request; the future resolves to its
        :class:`~repro.core.answer.AuthorizedAnswer`.

        Raises :class:`~repro.errors.UnknownTenantError` for an
        unregistered tenant, parse/planning errors for statements
        that do not compile (synchronously, before any queueing — so
        workers only ever see valid plans), and
        :class:`~repro.errors.ServingError` after :meth:`close`; past
        admission, failures resolve the future fail-closed rather
        than raising.
        """
        maybe_fault("serving.submit")
        owner = self.tenants.get(tenant)
        deadline: Optional[float] = None
        if self.config.request_deadline_ms > 0:
            deadline = time.monotonic() \
                + self.config.request_deadline_ms / 1e3
        pending = _Pending(
            query=owner.engine.prepare(query), deadline=deadline,
        )
        key: _BatchKey = (tenant, user)
        with self._work:
            if self._closing:
                raise ServingError(
                    "cannot submit to a closed authorization server"
                )
            admitted = self._admission.admit()
            if admitted:
                queue = self._queues.setdefault(key, deque())
                queue.append(pending)
                if key not in self._scheduled \
                        and key not in self._busy:
                    self._schedule(key)
                else:
                    # Already scheduled: the arrival may have filled
                    # the queue to ``max_batch``, making a lingering
                    # key drainable right now.
                    self._work.notify()
        if not admitted:
            # Hard shed: deny immediately instead of queueing past the
            # limit.  ``deny`` touches no data and no cache, so the
            # cost of refusing is bounded no matter how hot the query;
            # the answer is audited, empty, and sound — overload
            # cannot widen access.
            answer = owner.engine.deny(
                user, pending.query,
                reason="admission shed: queue full",
            )
            pending.future.set_result(answer)
            with self._work:
                self._served += 1
        return pending.future

    def authorize(self, tenant: str, user: str,
                  query: Union[Query, str]) -> AuthorizedAnswer:
        """Synchronous convenience: submit and wait."""
        return self.submit(tenant, user, query).result()

    # ------------------------------------------------------------------
    # worker internals
    # ------------------------------------------------------------------

    def _schedule(self, key: _BatchKey) -> None:
        """Mark ``key`` ready for a worker.  Caller holds ``_work``
        (a registered held-method: SL011 checks every call site)."""
        self._scheduled.add(key)
        self._ready.append(key)
        if self.config.batch_linger_ms > 0:
            self._stamps[key] = time.monotonic()
        self._work.notify()

    def _next_batch(
        self,
    ) -> Tuple[Optional[_BatchKey], List[_Pending]]:
        """Block for the next ``(key, batch)``; ``(None, [])`` means
        the server is closed and fully drained.

        A ready key is drainable immediately when the server does not
        linger, is closing, or the key's queue reached ``max_batch``;
        otherwise workers leave it to fill until its linger deadline
        and sleep exactly until the earliest deadline among the ready
        keys.
        """
        linger = self.config.batch_linger_ms / 1e3
        with self._work:
            while True:
                now = time.monotonic() if linger > 0.0 else 0.0
                chosen: Optional[_BatchKey] = None
                deadline: Optional[float] = None
                for key in self._ready:
                    if (
                        linger == 0.0
                        or self._closing
                        or len(self._queues[key])
                        >= self.config.max_batch
                    ):
                        chosen = key
                        break
                    ready_at = self._stamps[key] + linger
                    if ready_at <= now:
                        chosen = key
                        break
                    if deadline is None or ready_at < deadline:
                        deadline = ready_at
                if chosen is not None:
                    self._ready.remove(chosen)
                    self._scheduled.discard(chosen)
                    self._stamps.pop(chosen, None)
                    self._busy.add(chosen)
                    queue = self._queues[chosen]
                    batch: List[_Pending] = []
                    while queue and len(batch) < self.config.max_batch:
                        batch.append(queue.popleft())
                    if not queue:
                        del self._queues[chosen]
                    self._batches += 1
                    self._batched_requests += len(batch)
                    if len(batch) > self._largest_batch:
                        self._largest_batch = len(batch)
                    return chosen, batch
                if self._closing and not self._ready:
                    return None, []
                if deadline is not None:
                    self._work.wait(deadline - now)
                else:
                    self._work.wait()

    def _worker_loop(self) -> None:
        while True:
            key, batch = self._next_batch()
            if key is None:
                return
            try:
                self._process(key, batch)
            finally:
                self._release_key(key)

    def _release_key(self, key: _BatchKey) -> None:
        """End this worker's exclusive drain of ``key``; reschedule it
        if requests accumulated while the batch was processing."""
        with self._work:
            self._busy.discard(key)
            if self._queues.get(key) and key not in self._scheduled:
                self._schedule(key)

    def _process(self, key: _BatchKey, batch: List[_Pending]) -> None:
        """Drain one batch through the tenant's engine.

        Typed failures (:class:`~repro.errors.ReproError`, which
        includes injected faults) deny the affected requests
        fail-closed; anything broader resolves the futures with the
        exception — so callers are never left hanging — releases the
        admission slots, and re-raises.
        """
        tenant_name, user = key
        # Tenants are never removed, so this lookup cannot fail for a
        # key that reached the queue.
        engine = self.tenants.get(tenant_name).engine
        try:
            try:
                maybe_fault("serving.batch")
                # An open breaker means this tenant's batches are
                # failing over to the in-process oracle; raise *its*
                # floor (and only its) so the extra in-process load
                # sheds derivation cost, not cluster-wide fidelity.
                self._admission.set_tenant_floor(
                    tenant_name,
                    self.config.admission.breaker_floor
                    if engine.executor.breaker.state == OPEN else 0,
                )
                floor = max(
                    self._admission.floor(exclude=len(batch)),
                    self._admission.tenant_floor(tenant_name),
                )
                # Deadline-expired requests degrade instead of
                # stalling the drainer at full cost: the caller's
                # budget is gone, so the ladder answers them at
                # ``deadline_floor`` (EMPTY by default — no
                # evaluation at all) while fresh neighbours still
                # get the full batch path.
                fresh: List[_Pending] = []
                expired: List[_Pending] = []
                now = time.monotonic()
                for pending in batch:
                    if pending.deadline is not None \
                            and now >= pending.deadline:
                        expired.append(pending)
                    else:
                        fresh.append(pending)
                if expired:
                    self._admission.note_deadline_shed(len(expired))
                    rung = max(floor, self.config.deadline_floor)
                    for pending in expired:
                        pending.future.set_result(
                            engine.authorize_degraded(
                                user, pending.query, rung,
                                reason="request deadline exceeded",
                            )
                        )
                queries = [pending.query for pending in fresh]
                if floor == 0:
                    answers = engine.authorize_batch(user, queries)
                else:
                    # Overloaded: derive at a cheaper rung.  Degraded
                    # masks are subsets of the full-fidelity mask, so
                    # shedding narrows delivery, never widens it.
                    self._admission.note_shed(floor, len(fresh))
                    answers = tuple(
                        engine.authorize_degraded(
                            user, query, floor,
                            reason=f"admission shed to rung {floor}",
                        )
                        for query in queries
                    )
                for pending, answer in zip(fresh, answers):
                    pending.future.set_result(answer)
            except ReproError as error:
                reason = f"{type(error).__name__}: {error}"
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_result(
                            engine.deny(user, pending.query,
                                        reason=reason)
                        )
        except BaseException as error:
            for pending in batch:
                if not pending.future.done():
                    pending.future.set_exception(error)
            self._admission.release(len(batch))
            raise
        self._admission.release(len(batch))
        with self._work:
            self._served += len(batch)

    # ------------------------------------------------------------------
    # lifecycle and observability
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Drain every queued request, then stop the workers.
        Idempotent; further submits raise ``ServingError``."""
        with self._work:
            self._closing = True
            self._work.notify_all()
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "AuthorizationServer":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()

    def telemetry(self) -> ServerTelemetry:
        """Operational counters: throughput, batching, admission, and
        per-tenant cache statistics."""
        with self._work:
            served = self._served
            batches = self._batches
            batched = self._batched_requests
            largest = self._largest_batch
        stats = {
            name: self.tenants.get(name).engine.stats()
            for name in self.tenants.names()
        }
        return ServerTelemetry(
            served=served,
            batches=batches,
            batched_requests=batched,
            largest_batch=largest,
            admission=self._admission.snapshot(),
            cache_stats=stats,
        )
