"""Per-tenant isolation: one engine, catalog, cache, and audit each.

A multi-tenant authorization service must guarantee that tenant A's
grants, revocations, cached derivations, and audit trail are invisible
to tenant B.  Rather than tagging shared structures with tenant ids
(and auditing every lookup for a missing tag), each :class:`Tenant`
owns a complete engine stack: its own :class:`PermissionCatalog`, its
own sharded derivation cache, and its own :class:`AuditLog`.  Cache
keys from different tenants can collide on ``(user, plan_key)``
harmlessly because they never share a cache.

:class:`TenantRegistry` is the thread-safe name → tenant map the
server routes requests through.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.backends.base import ExecutionBackend

from repro.core.audit import AuditLog
from repro.core.engine import AuthorizationEngine
from repro.errors import ServingError, UnknownTenantError


@dataclass(frozen=True)
class Tenant:
    """One tenant's isolated authorization stack."""

    name: str
    engine: AuthorizationEngine

    @property
    def backend(self) -> "ExecutionBackend":
        """The tenant engine's execution backend.

        Backends are part of the isolation story: each tenant's
        backend instance (and, for the SQL backends, its embedded
        store) is private to that tenant's engine — one tenant's bulk
        load or re-sync never blocks another's queries.
        """
        return self.engine.backend

    @property
    def audit(self) -> AuditLog:
        """The tenant's audit trail (raises if attached without one)."""
        log = self.engine.audit
        if log is None:
            raise ServingError(
                f"tenant {self.name!r} has no audit log attached"
            )
        return log


class TenantRegistry:
    """Thread-safe registry of named tenants.

    Registration is expected at deployment time, but grant/revoke
    churn *within* a tenant is fully concurrent with lookups — the
    registry lock only guards the name map, never an engine.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: Dict[str, Tenant] = {}

    def add(self, tenant: Tenant) -> Tenant:
        """Register ``tenant``; duplicate names are refused."""
        with self._lock:
            if tenant.name in self._tenants:
                raise ServingError(
                    f"tenant already registered: {tenant.name!r}"
                )
            self._tenants[tenant.name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            try:
                return self._tenants[name]
            except KeyError:
                raise UnknownTenantError(name) from None

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._tenants)

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._tenants
