"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still being able to discriminate failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A relation scheme or database scheme is malformed.

    Raised for duplicate attribute names, empty schemes, keys that
    reference unknown attributes, and similar structural problems.
    """


class TypeMismatchError(ReproError):
    """A value does not belong to the domain of its attribute.

    Also raised when a comparison mixes values from incompatible
    domains (e.g. comparing a string attribute with an integer
    constant).
    """


class UnknownRelationError(ReproError):
    """A statement references a relation that is not in the scheme."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(ReproError):
    """A statement references an attribute missing from its relation."""

    def __init__(self, relation: str, attribute: str) -> None:
        super().__init__(f"relation {relation!r} has no attribute {attribute!r}")
        self.relation = relation
        self.attribute = attribute


class UnknownViewError(ReproError):
    """A permit statement references a view that was never defined."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown view: {name!r}")
        self.name = name


class DuplicateViewError(ReproError):
    """A view statement reuses the name of an existing view."""

    def __init__(self, name: str) -> None:
        super().__init__(f"view already defined: {name!r}")
        self.name = name


class ParseError(ReproError):
    """A statement in the surface language could not be parsed.

    Carries the offending position so interactive front ends can point
    at the problem.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1) -> None:
        location = ""
        if line >= 0:
            location = f" (line {line})"
        elif position >= 0:
            location = f" (at offset {position})"
        super().__init__(message + location)
        self.position = position
        self.line = line


class SafetyError(ReproError):
    """A calculus expression violates the safety conditions of Section 2.

    Examples: an empty target list, a comparison whose operands never
    appear in a membership subformula, or a condition with two constant
    operands.
    """


class AuthorizationError(ReproError):
    """A request was denied outright.

    The Motro engine itself never raises this for retrievals (it masks
    instead); the System R and INGRES baselines raise it to model their
    all-or-nothing behaviour, and the update extension raises it for
    unauthorized modifications.
    """


class GrantError(ReproError):
    """An invalid grant or revoke in the System R baseline.

    Raised e.g. when a grantor lacks the grant option on the object it
    is trying to share.
    """


class EvaluationError(ReproError):
    """An algebra plan could not be evaluated against an instance."""


class BudgetExceededError(ReproError):
    """A mask derivation overran one of its resource budgets.

    Raised at operator boundaries when an intermediate mask table (or a
    self-join pool) grows past the configured limit.  The engine never
    surfaces this to callers: the degradation ladder catches it and
    re-derives at a cheaper rung (see ``repro.metaalgebra.ladder``).
    """

    def __init__(self, resource: str, stage: str, observed: int,
                 limit: int) -> None:
        super().__init__(
            f"{resource} budget exceeded in {stage}: "
            f"{observed} > {limit}"
        )
        self.resource = resource
        self.stage = stage
        self.observed = observed
        self.limit = limit


class DerivationTimeout(ReproError):
    """A mask derivation overran its wall-time deadline.

    Like :class:`BudgetExceededError`, this is internal fuel for the
    degradation ladder; callers of ``authorize`` only ever observe the
    resulting ``degradation_level``.
    """

    def __init__(self, stage: str, deadline_ms: float) -> None:
        super().__init__(
            f"derivation deadline of {deadline_ms:g} ms overrun "
            f"during {stage}"
        )
        self.stage = stage
        self.deadline_ms = deadline_ms


class SnapshotError(ReproError):
    """A persisted snapshot could not be read back.

    Raised for unknown format markers, invalid JSON, and structurally
    malformed documents — ``storage.load`` validates before building
    anything, so a corrupt snapshot never yields a half-restored
    database.
    """


class FaultInjected(ReproError):
    """An artificial failure raised by ``repro.testing.faults``.

    Never raised in production: injection points are inert unless a
    test (or the ``--faults`` CLI switch) installs a fault plan.  The
    distinct type lets resilience tests verify that the failure they
    observe is the one they injected.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at {site!r}")
        self.site = site


class BackendError(ReproError):
    """An execution backend failed to load data or run a plan.

    Raised by :mod:`repro.backends` implementations when the embedded
    query engine rejects a compiled statement or the backend is asked
    to execute before any database was loaded.  Inside ``authorize``
    the fail-closed boundary converts it into an empty-mask answer.
    """


class BackendUnavailableError(BackendError):
    """A requested execution backend cannot be constructed.

    Raised for unknown backend names and for optional backends whose
    driver module is not installed (e.g. ``duckdb``).
    """

    def __init__(self, name: str, reason: str = "") -> None:
        message = f"execution backend {name!r} is unavailable"
        if reason:
            message += f": {reason}"
        super().__init__(message)
        self.name = name


class ServingError(ReproError):
    """The serving layer rejected a request before it reached an engine.

    Raised for structural problems — an unknown tenant, a submit after
    shutdown — never for authorization decisions, which always come
    back as (possibly empty) :class:`~repro.core.answer.AuthorizedAnswer`
    objects with ``error`` set.
    """


class UnknownTenantError(ServingError):
    """A request named a tenant the server has never been told about."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown tenant: {name!r}")
        self.name = name
