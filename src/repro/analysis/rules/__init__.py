"""Built-in soundlint rules (imported for registration side effects)."""

from __future__ import annotations

from repro.analysis.flow import (  # noqa: F401
    locks,
    taint,
)
from repro.analysis.rules import (  # noqa: F401
    backends,
    budgets,
    bypass,
    determinism,
    exceptions,
    failover,
    immutability,
    oracles,
    typing_gate,
)
