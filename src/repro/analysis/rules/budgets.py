"""SL002 — budget coverage of the meta-algebra operators.

The resilience layer's guarantee (docs/RESILIENCE.md) is only as
strong as its weakest operator: a single unmetered operator lets one
query materialize unbounded meta-tuples and starve every other request
before the degradation ladder can step in.  Every public operator in
the five meta-algebra modules — a module-level function that returns
mask rows (``MaskTable`` or a tuple of ``MetaTuple``) — must therefore
accept a ``budget`` parameter and charge it
(``charge_rows``/``charge_selfjoin``) on the rows it materializes.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.analysis.framework import (
    FunctionNode,
    SourceFile,
    Violation,
    rule,
)
from repro.analysis.registry import BUDGET_CHARGES, BUDGETED_MODULES


_ROW_RETURN = re.compile(r"MaskTable|[Tt]uple\[MetaTuple")


def _returns_rows(node: FunctionNode) -> bool:
    """Does the annotated return type carry a *set* of mask rows?

    ``MaskTable`` and ``Tuple[MetaTuple, ...]`` are operator outputs;
    a single ``Optional[MetaTuple]`` (e.g. a row combiner) is not a
    materialization site.
    """
    if node.returns is None:
        return False
    return _ROW_RETURN.search(ast.unparse(node.returns)) is not None


def _budget_param(node: FunctionNode) -> Optional[ast.arg]:
    for arg in (node.args.posonlyargs + node.args.args
                + node.args.kwonlyargs):
        if arg.arg == "budget":
            return arg
    return None


def _charges_budget(node: FunctionNode) -> bool:
    for child in ast.walk(node):
        if (isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in BUDGET_CHARGES
                and isinstance(child.func.value, ast.Name)
                and child.func.value.id == "budget"):
            return True
    return False


@rule(
    "SL002",
    "budget coverage",
    "every public meta-algebra operator accepts and charges the "
    "derivation Budget before materializing rows",
)
def check_budgets(source: SourceFile) -> Iterator[Violation]:
    if source.module not in BUDGETED_MODULES:
        return
    for node in source.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name.startswith("_") or not _returns_rows(node):
            continue
        if _budget_param(node) is None:
            yield source.violation(
                "SL002", node,
                f"operator {node.name!r} returns mask rows but takes no "
                f"'budget' parameter; unmetered operators break the "
                f"resource-budget guarantee",
            )
            continue
        if not _charges_budget(node):
            yield source.violation(
                "SL002", node,
                f"operator {node.name!r} never charges its budget "
                f"(expected a budget.charge_rows/charge_selfjoin call "
                f"on the rows it materializes)",
            )
