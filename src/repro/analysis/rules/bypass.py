"""SL006 — no direct relation reads around ``engine.authorize``.

Examples and workload scenarios are the code readers copy.  A demo
that reads ``database.instance(...)`` or evaluates a plan directly
delivers *unmasked* rows — precisely the bypass the paper's Figure 2
architecture exists to prevent (queries address the base relations,
but every answer passes through the mask).  In ``examples/`` and
``repro.workloads``, data must flow through ``engine.authorize``;
construction-time access (building instances) is suppressible with a
justification comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import SourceFile, Violation, rule
from repro.analysis.registry import (
    AUTHORIZE_ONLY_PREFIXES,
    BYPASS_CALLS,
    BYPASS_IMPORTS,
)


@rule(
    "SL006",
    "no authorize bypass",
    "examples/workloads never read relations or evaluate plans "
    "directly; every data read flows through engine.authorize",
)
def check_bypass(source: SourceFile) -> Iterator[Violation]:
    if not source.module.startswith(AUTHORIZE_ONLY_PREFIXES):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ImportFrom) and \
                node.module in BYPASS_IMPORTS:
            yield source.violation(
                "SL006", node,
                f"import from {node.module!r} reaches around the mask; "
                f"examples and workloads must go through "
                f"engine.authorize",
            )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in BYPASS_CALLS:
                yield source.violation(
                    "SL006", node,
                    f"direct call to {func.id!r} evaluates a plan "
                    f"without the mask; use engine.authorize",
                )
            elif (isinstance(func, ast.Attribute)
                  and func.attr == "instance"
                  and len(node.args) == 1
                  and not node.keywords
                  and not (isinstance(func.value, ast.Name)
                           and func.value.id == "self")):
                yield source.violation(
                    "SL006", node,
                    "direct Database.instance(...) read bypasses "
                    "engine.authorize; deliver data through the mask "
                    "(suppress with a justification for "
                    "construction-time access)",
                )
            elif (isinstance(func, ast.Attribute)
                  and func.attr in BYPASS_CALLS):
                yield source.violation(
                    "SL006", node,
                    f"call to {ast.unparse(func)!r} evaluates a plan "
                    f"without the mask; use engine.authorize",
                )
