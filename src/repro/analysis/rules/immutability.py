"""SL003 — meta-table immutability inside operators.

The soundness Theorem's argument is compositional: each operator's
output is a function of its *unchanged* inputs, so a mask can be
replayed, cached, and compared against the oracle path.  An operator
that mutates a ``MaskTable``/``Mask``/``MetaTuple`` parameter corrupts
whatever else holds a reference — a cached derivation, a trace, the
compiled-mask kernel — and turns the differential suites into liars.
This rule flags attribute/subscript assignment and mutating method
calls on parameters annotated with a protected meta type.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Set

from repro.analysis.framework import (
    FunctionNode,
    SourceFile,
    Violation,
    rule,
)
from repro.analysis.registry import (
    IMMUTABLE_MODULE_PREFIXES,
    IMMUTABLE_TYPES,
    MUTATOR_METHODS,
)

_TYPE_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _protected_params(node: FunctionNode) -> Set[str]:
    """Parameter names annotated with a protected meta type."""
    names: Set[str] = set()
    for arg in (node.args.posonlyargs + node.args.args
                + node.args.kwonlyargs):
        if arg.annotation is None:
            continue
        words = set(_TYPE_WORD.findall(ast.unparse(arg.annotation)))
        if words & IMMUTABLE_TYPES:
            names.add(arg.arg)
    return names


def _root_name(node: ast.expr) -> str:
    """The base ``Name`` of an attribute/subscript chain, or ''."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _mutations(node: FunctionNode,
               protected: Set[str]) -> Iterator[ast.AST]:
    for child in ast.walk(node):
        targets: list = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        elif isinstance(child, ast.Delete):
            targets = list(child.targets)
        for target in targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)) \
                    and _root_name(target) in protected:
                yield child
        if (isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in MUTATOR_METHODS
                and _root_name(child.func.value) in protected):
            yield child


@rule(
    "SL003",
    "meta-table immutability",
    "operators never mutate MaskTable/Mask/MetaTuple parameters; "
    "derivation outputs must be pure functions of unchanged inputs",
)
def check_immutability(source: SourceFile) -> Iterator[Violation]:
    if not source.module.startswith(IMMUTABLE_MODULE_PREFIXES):
        return
    for qualname, node in source.functions():
        protected = _protected_params(node)
        if not protected:
            continue
        for mutation in _mutations(node, protected):
            yield source.violation(
                "SL003", mutation,
                f"{qualname!r} mutates a parameter of a protected meta "
                f"type (immutable inputs: "
                f"{', '.join(sorted(protected))}); build and return a "
                f"new value instead",
            )
