"""SL009 — failover paths pinned to the registered oracle.

Failover is only sound because the target it fails over *to* is the
differential oracle every backend is already measured against: the
mask derivation is backend-independent, so re-evaluating on the oracle
preserves the authorization decision exactly.  A failover path aimed
at anything else — another backend, a cache, a stub — would silently
convert an availability mechanism into a soundness hole.

This rule pins the wiring the same way SL005 pins compiled fast paths
and SL008 pins backends: every retry/breaker/failover wrapper —
registered in :data:`repro.analysis.registry.FAILOVER_PATHS`,
discovered by shape otherwise — must (a) exist, (b) name an oracle
that exists, and (c) name a parity test file that exists and exercises
both the wrapper and the oracle.  The discovery sweep walks the
``repro.resilience.`` modules for classes that assign a
``self.oracle``/``self.fallback`` attribute (the shape of routing
between engines) and flags any that are not registered.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Context, Violation, rule
from repro.analysis.registry import (
    FAILOVER_MARKERS,
    FAILOVER_MODULE_PREFIX,
    FAILOVER_PATHS,
)
from repro.analysis.rules.backends import _resolve


def _assigns_marker(cls: ast.ClassDef) -> bool:
    """Does any method of ``cls`` assign ``self.<marker>``?"""
    for node in ast.walk(cls):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in FAILOVER_MARKERS
            ):
                return True
    return False


@rule(
    "SL009",
    "failover oracle pinning",
    "every breaker/failover path re-routes to a registered oracle and "
    "is covered by a differential parity test",
    scope="project",
)
def check_failover(context: Context) -> Iterator[Violation]:
    for path, entry in FAILOVER_PATHS.items():
        source, node = _resolve(context, path)
        if source is None:
            # The module is outside this run's paths (rule-fixture
            # trees); nothing to check against.
            continue
        if node is None:
            yield Violation(
                "SL009", source.relative, 1,
                f"registered failover path {path!r} no longer exists; "
                f"update repro.analysis.registry.FAILOVER_PATHS",
            )
            continue
        oracle_source, oracle_node = _resolve(context, entry.oracle)
        if oracle_source is None or oracle_node is None:
            yield Violation(
                "SL009", source.relative, getattr(node, "lineno", 1),
                f"oracle {entry.oracle!r} for failover path {path!r} "
                f"does not exist; failing over to a dead target is a "
                f"soundness hole",
            )
        test_path = context.root / entry.test
        if not test_path.is_file():
            yield Violation(
                "SL009", source.relative, getattr(node, "lineno", 1),
                f"parity test {entry.test!r} for failover path "
                f"{path!r} is missing",
            )
            continue
        text = test_path.read_text(encoding="utf-8")
        path_leaf = path.rsplit(".", 1)[-1]
        oracle_leaf = entry.oracle.rsplit(".", 1)[-1]
        if path_leaf not in text or oracle_leaf not in text:
            yield Violation(
                "SL009", source.relative, getattr(node, "lineno", 1),
                f"parity test {entry.test!r} does not exercise both "
                f"{path_leaf!r} and its oracle {oracle_leaf!r}",
            )

    # Discovery: failover-shaped classes must be registered.
    for source in context.sources:
        if not source.module.startswith(FAILOVER_MODULE_PREFIX):
            continue
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_"):
                continue
            if not _assigns_marker(node):
                continue
            qualname = f"{source.module}.{node.name}"
            if qualname not in FAILOVER_PATHS:
                yield source.violation(
                    "SL009", node,
                    f"{qualname!r} routes between execution targets "
                    f"(assigns one of {sorted(FAILOVER_MARKERS)}) but "
                    f"has no registered oracle; add it to "
                    f"repro.analysis.registry.FAILOVER_PATHS with a "
                    f"differential parity test",
                )
