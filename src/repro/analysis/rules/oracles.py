"""SL005 — oracle parity for compiled/streaming fast paths.

Every optimization PR keeps the interpreted/materializing reference
path alive as an *oracle* and proves the fast path byte-identical to it
with a differential suite (docs/PERFORMANCE.md).  That discipline only
holds if it is checkable: this rule requires every fast path —
registered in :data:`repro.analysis.registry.FAST_PATHS`, discovered by
name shape otherwise — to (a) exist, (b) name an oracle that exists,
and (c) name a differential test file that exists and exercises both.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.framework import Context, SourceFile, Violation, rule
from repro.analysis.registry import (
    FAST_PATH_MARKERS,
    FAST_PATH_MODULES,
    FAST_PATHS,
)


def _resolve(context: Context, dotted: str) -> Tuple[
        Optional[SourceFile], Optional[ast.AST]]:
    """Find the def/class a dotted qualname points at."""
    parts = dotted.split(".")
    for split in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:split])
        source = context.by_module(module)
        if source is None:
            continue
        remainder = parts[split:]
        node: ast.AST = source.tree
        for name in remainder:
            body = getattr(node, "body", [])
            node_next = None
            for child in body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)) \
                        and child.name == name:
                    node_next = child
                    break
            if node_next is None:
                return source, None
            node = node_next
        return source, node
    return None, None


def _anchor(context: Context, module: str) -> Violation:
    """A fallback violation location for registry-level problems."""
    source = context.by_module(module)
    if source is not None:
        return Violation("SL005", source.relative, 1, "")
    return Violation("SL005", "src", 1, "")


def _is_fast_path(module: str, name: str) -> bool:
    if any(marker in name for marker in FAST_PATH_MARKERS):
        return True
    return module in FAST_PATH_MODULES and (
        name.startswith("compile_") or name.endswith("_streaming")
    )


@rule(
    "SL005",
    "oracle parity",
    "every compiled/streaming fast path has a registered reference "
    "oracle and a differential test exercising both",
    scope="project",
)
def check_oracles(context: Context) -> Iterator[Violation]:
    for fast_path, entry in FAST_PATHS.items():
        source, node = _resolve(context, fast_path)
        if source is None:
            # The fast path's module is outside this run's paths
            # (e.g. a rule-fixture tree); nothing to check against.
            continue
        if node is None:
            yield Violation(
                "SL005", source.relative, 1,
                f"registered fast path {fast_path!r} no longer exists; "
                f"update repro.analysis.registry.FAST_PATHS",
            )
            continue
        oracle_source, oracle_node = _resolve(context, entry.oracle)
        if oracle_source is None or oracle_node is None:
            yield Violation(
                "SL005", source.relative, getattr(node, "lineno", 1),
                f"oracle {entry.oracle!r} for fast path {fast_path!r} "
                f"does not exist; a fast path without a live reference "
                f"implementation cannot be differentially tested",
            )
        test_path = context.root / entry.test
        if not test_path.is_file():
            yield Violation(
                "SL005", source.relative, getattr(node, "lineno", 1),
                f"differential test {entry.test!r} for fast path "
                f"{fast_path!r} is missing",
            )
            continue
        text = test_path.read_text(encoding="utf-8")
        fast_leaf = fast_path.rsplit(".", 1)[-1]
        oracle_leaf = entry.oracle.rsplit(".", 1)[-1]
        if fast_leaf not in text or oracle_leaf not in text:
            yield Violation(
                "SL005", source.relative, getattr(node, "lineno", 1),
                f"differential test {entry.test!r} does not exercise "
                f"both {fast_leaf!r} and its oracle {oracle_leaf!r}",
            )

    # Discovery: fast-path-shaped public functions must be registered.
    for source in context.sources:
        if not source.module.startswith("repro.") or \
                source.module.startswith("repro.analysis"):
            continue
        for node in source.tree.body:
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            if not _is_fast_path(source.module, node.name):
                continue
            qualname = f"{source.module}.{node.name}"
            if qualname not in FAST_PATHS:
                yield source.violation(
                    "SL005", node,
                    f"{qualname!r} looks like a compiled/streaming fast "
                    f"path but has no registered oracle; add it to "
                    f"repro.analysis.registry.FAST_PATHS with a "
                    f"differential test",
                )
