"""SL004 — determinism of cache and canonical-key construction.

The derivation cache's transparency guarantee (docs/CACHING.md) keys
entries by ``(user, canonical plan key)`` and assumes the key is a
pure, stable function of the plan.  Anything process-dependent in key
construction — ``id()``, wall-clock reads, ``random``/``uuid``, or
iteration order of an unordered ``set`` — silently fractures the key
space: equivalent plans stop sharing entries at best, and at worst a
stale mask is served under a key that no longer means what it meant.
This rule bans those constructs outright in the key-producing modules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import SourceFile, Violation, rule
from repro.analysis.registry import (
    DETERMINISTIC_MODULES,
    NONDETERMINISTIC_IMPORTS,
)


def _dotted(node: ast.expr) -> str:
    """Render an attribute chain like ``datetime.now`` (best effort)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _is_raw_set(node: ast.expr) -> bool:
    """Is the expression an unordered set constructed in place?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


@rule(
    "SL004",
    "deterministic key construction",
    "no id(), clock reads, random/uuid, or unordered set iteration in "
    "canonical-key/cache modules",
)
def check_determinism(source: SourceFile) -> Iterator[Violation]:
    if source.module not in DETERMINISTIC_MODULES:
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in NONDETERMINISTIC_IMPORTS:
                    yield source.violation(
                        "SL004", node,
                        f"import of {alias.name!r} in a key-producing "
                        f"module; keys must be process-independent",
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in NONDETERMINISTIC_IMPORTS:
                yield source.violation(
                    "SL004", node,
                    f"import from {node.module!r} in a key-producing "
                    f"module; keys must be process-independent",
                )
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "id":
                yield source.violation(
                    "SL004", node,
                    "id() is process-dependent and must never reach a "
                    "cache or canonical key",
                )
            elif isinstance(node.func, ast.Attribute):
                dotted = _dotted(node.func)
                root = dotted.split(".")[0]
                if root in NONDETERMINISTIC_IMPORTS or \
                        dotted == "os.urandom":
                    yield source.violation(
                        "SL004", node,
                        f"call to {dotted!r} is nondeterministic; keys "
                        f"must be stable across runs",
                    )
        elif isinstance(node, ast.For) and _is_raw_set(node.iter):
            yield source.violation(
                "SL004", node,
                "iteration over an unordered set in a key-producing "
                "module; wrap in sorted(...) to fix the order",
            )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for generator in node.generators:
                if _is_raw_set(generator.iter):
                    yield source.violation(
                        "SL004", node,
                        "comprehension over an unordered set in a "
                        "key-producing module; wrap in sorted(...)",
                    )
