"""SL001 — fail-closed exception discipline.

The fail-closed contract (docs/RESILIENCE.md) concentrates *all*
catch-everything handling at two places: the engine's authorize
boundaries and the degradation ladder's rung loop.  A broad ``except``
anywhere else either swallows a genuine fault before the boundary can
fail closed, or quietly converts a soundness bug into a wrong answer.
Interior code must narrow to :class:`~repro.errors.ReproError`
subtypes (typed, expected failures) or re-raise unconditionally
(cleanup handlers).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.framework import SourceFile, Violation, rule
from repro.analysis.registry import FAIL_CLOSED_BOUNDARIES

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(node: Optional[ast.expr]) -> Optional[str]:
    """The broad exception name a handler catches, if any."""
    if node is None:
        return "bare except"
    if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body end in an unconditional bare ``raise``?"""
    if not handler.body:
        return False
    last = handler.body[-1]
    return isinstance(last, ast.Raise) and last.exc is None


def _handlers_with_owner(
    source: SourceFile,
) -> Iterator[Tuple[ast.ExceptHandler, Optional[str]]]:
    """Every except handler with its innermost enclosing qualname."""

    def walk(node: ast.AST, owner: Optional[str]) -> Iterator[
            Tuple[ast.ExceptHandler, Optional[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = f"{owner}.{child.name}" if owner else child.name
                yield from walk(child, name)
            elif isinstance(child, ast.ExceptHandler):
                yield child, owner
                yield from walk(child, owner)
            else:
                yield from walk(child, owner)

    return walk(source.tree, None)


@rule(
    "SL001",
    "fail-closed exception discipline",
    "broad excepts only at registered fail-closed boundaries; interior "
    "code narrows to ReproError subtypes or re-raises",
)
def check_exceptions(source: SourceFile) -> Iterator[Violation]:
    if not source.module.startswith("repro."):
        return
    for handler, owner in _handlers_with_owner(source):
        caught = _broad_name(handler.type)
        if caught is None:
            continue
        if owner is not None and \
                f"{source.module}:{owner}" in FAIL_CLOSED_BOUNDARIES:
            continue
        if _reraises(handler):
            continue
        where = f"in {owner!r}" if owner else "at module level"
        yield source.violation(
            "SL001", handler,
            f"broad '{caught}' {where} is not a registered fail-closed "
            f"boundary; narrow to ReproError subtypes or re-raise "
            f"(registry: repro.analysis.registry.FAIL_CLOSED_BOUNDARIES)",
        )
