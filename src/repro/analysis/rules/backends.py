"""SL008 — differential parity for execution backends.

The backend contract (``docs/BACKENDS.md``) is the fast-path oracle
discipline of SL005 lifted to whole execution engines: the Python
backend is the reference, and every other backend must deliver
sorted-row identical answers — unmasked and masked — under a
differential suite.  This rule makes the discipline checkable: every
execution backend — registered in
:data:`repro.analysis.registry.EXECUTION_BACKENDS`, discovered by name
shape otherwise — must (a) exist, (b) name an oracle backend that
exists, and (c) name a parity test file that exists and exercises
both.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.framework import Context, SourceFile, Violation, rule
from repro.analysis.registry import (
    BACKEND_EXEMPT,
    BACKEND_MODULE_PREFIX,
    EXECUTION_BACKENDS,
)


def _resolve(context: Context, dotted: str) -> Tuple[
        Optional[SourceFile], Optional[ast.AST]]:
    """Find the def/class a dotted qualname points at."""
    parts = dotted.split(".")
    for split in range(len(parts) - 1, 0, -1):
        module = ".".join(parts[:split])
        source = context.by_module(module)
        if source is None:
            continue
        remainder = parts[split:]
        node: ast.AST = source.tree
        for name in remainder:
            body = getattr(node, "body", [])
            node_next = None
            for child in body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef,
                                      ast.ClassDef)) \
                        and child.name == name:
                    node_next = child
                    break
            if node_next is None:
                return source, None
            node = node_next
        return source, node
    return None, None


@rule(
    "SL008",
    "backend parity",
    "every execution backend has a registered oracle backend and a "
    "differential parity test exercising both",
    scope="project",
)
def check_backends(context: Context) -> Iterator[Violation]:
    for backend, entry in EXECUTION_BACKENDS.items():
        source, node = _resolve(context, backend)
        if source is None:
            # The backend's module is outside this run's paths
            # (e.g. a rule-fixture tree); nothing to check against.
            continue
        if node is None:
            yield Violation(
                "SL008", source.relative, 1,
                f"registered backend {backend!r} no longer exists; "
                f"update repro.analysis.registry.EXECUTION_BACKENDS",
            )
            continue
        oracle_source, oracle_node = _resolve(context, entry.oracle)
        if oracle_source is None or oracle_node is None:
            yield Violation(
                "SL008", source.relative, getattr(node, "lineno", 1),
                f"oracle {entry.oracle!r} for backend {backend!r} does "
                f"not exist; a backend without a live oracle cannot be "
                f"differentially tested",
            )
        test_path = context.root / entry.test
        if not test_path.is_file():
            yield Violation(
                "SL008", source.relative, getattr(node, "lineno", 1),
                f"parity test {entry.test!r} for backend {backend!r} "
                f"is missing",
            )
            continue
        text = test_path.read_text(encoding="utf-8")
        backend_leaf = backend.rsplit(".", 1)[-1]
        oracle_leaf = entry.oracle.rsplit(".", 1)[-1]
        if backend_leaf not in text or oracle_leaf not in text:
            yield Violation(
                "SL008", source.relative, getattr(node, "lineno", 1),
                f"parity test {entry.test!r} does not exercise both "
                f"{backend_leaf!r} and its oracle {oracle_leaf!r}",
            )

    # Discovery: backend-shaped public classes must be registered.
    for source in context.sources:
        if not source.module.startswith(BACKEND_MODULE_PREFIX):
            continue
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name.startswith("_"):
                continue
            if not node.name.endswith("Backend"):
                continue
            qualname = f"{source.module}.{node.name}"
            if qualname in BACKEND_EXEMPT:
                continue
            if qualname not in EXECUTION_BACKENDS:
                yield source.violation(
                    "SL008", node,
                    f"{qualname!r} looks like an execution backend but "
                    f"has no registered oracle; add it to "
                    f"repro.analysis.registry.EXECUTION_BACKENDS with "
                    f"a differential parity test",
                )
