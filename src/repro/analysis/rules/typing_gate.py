"""SL007 — strict annotation coverage (the offline typing gate).

CI runs ``mypy --strict`` over ``src/repro``; this rule is the part of
that gate soundlint can enforce without mypy installed: every function
in the package annotates every parameter (including ``*args`` /
``**kwargs``) and its return type.  A signature mypy cannot see is a
signature mypy cannot check — untyped defs are exactly where widening
bugs (a mask where a relation was expected) slip through the strict
run via ``Any``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.framework import (
    FunctionNode,
    SourceFile,
    Violation,
    rule,
)


def _missing_annotations(node: FunctionNode) -> List[str]:
    missing: List[str] = []
    args = node.args
    positional = args.posonlyargs + args.args
    for index, arg in enumerate(positional):
        if arg.annotation is not None:
            continue
        if index == 0 and arg.arg in ("self", "cls"):
            continue
        missing.append(arg.arg)
    for arg in args.kwonlyargs:
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    return missing


@rule(
    "SL007",
    "strict annotation coverage",
    "every function in src/repro annotates all parameters and its "
    "return type, so the mypy --strict CI gate sees every signature",
)
def check_typing(source: SourceFile) -> Iterator[Violation]:
    if not source.module.startswith("repro."):
        return
    for qualname, node in source.functions():
        missing = _missing_annotations(node)
        if missing:
            yield source.violation(
                "SL007", node,
                f"{qualname!r} leaves parameters unannotated: "
                f"{', '.join(missing)}",
            )
        if node.returns is None:
            yield source.violation(
                "SL007", node,
                f"{qualname!r} has no return annotation (use '-> None' "
                f"for procedures)",
            )
