"""SL010 — no source→sink path without a registered mask application.

The paper's guarantee is that the derived view-definition mask is the
*sole* disclosure channel.  This rule proves the static half of that:
every interprocedural path from a backend read or raw evaluation
result (``registry.TAINT_SOURCES``) to a user-facing sink
(``registry.TAINT_SINKS``, delivery methods, chunk yields) must pass
through a registered mask application (``registry.TAINT_SANITIZERS``).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.flow.callgraph import build_graph
from repro.analysis.flow.dataflow import TaintAnalysis
from repro.analysis.framework import Context, Violation, rule


def taint_for(context: Context) -> TaintAnalysis:
    """Build (or fetch the cached) taint fixpoint for ``context``."""
    cached = context.cache.get("flow.taint")
    if isinstance(cached, TaintAnalysis):
        return cached
    analysis = TaintAnalysis(build_graph(context))
    analysis.run()
    context.cache["flow.taint"] = analysis
    return analysis


@rule(
    "SL010",
    "mask-escape taint",
    "every path from a backend read to a user-facing sink must "
    "traverse a registered mask application — the mask is the sole "
    "disclosure channel",
    scope="project",
)
def check_mask_escape(context: Context) -> Iterable[Violation]:
    violations: List[Violation] = list(taint_for(context).violations)
    return violations
