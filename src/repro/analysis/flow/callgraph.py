"""A closed-world call graph over the parsed ``repro`` sources.

The whole-program passes (SL010, SL011) need to know, for a call
expression in one module, which function definition in *another*
module it lands on.  This builder resolves that statically, at the
module level, using only what the AST declares:

* imports (including aliased imports and re-exports through package
  ``__init__`` modules, chased transitively);
* method calls through *annotated* receiver types — parameter
  annotations, ``self``-attribute types recorded from ``__init__``
  constructor calls and dataclass field annotations, and function
  return annotations;
* a unique-name fallback for methods defined by exactly one class in
  the closed world.

Anything dynamic — lambdas, callables passed as parameters, getattr —
is recorded as an *unresolved* call (visible in ``--graph``) and
soundly dropped by the dataflow layer, never guessed at.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.framework import Context, FunctionNode, SourceFile

#: Names that resolve to python builtins rather than project code.
_BUILTIN_NAMES: Set[str] = set(dir(builtins))


@dataclass
class FunctionInfo:
    """One function or method definition in the closed world."""

    qualname: str            # ``module:Class.method`` / ``module:func``
    module: str
    name: str
    cls: Optional[str]       # simple name of the owning class, if any
    node: FunctionNode
    source: SourceFile
    params: Tuple[str, ...]  # positional + kw-only names, in order
    returns_text: str        # unparsed return annotation ("" if none)
    is_method: bool


@dataclass
class ClassInfo:
    """One class definition plus its statically known attribute types."""

    qualname: str            # ``module:Class``
    module: str
    name: str
    node: ast.ClassDef
    source: SourceFile
    bases: Tuple[str, ...]   # unparsed base expressions
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` ⇒ unparsed type text (annotation or constructor).
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: Ordered class-level annotated fields (dataclass argument order).
    field_order: Tuple[str, ...] = ()


@dataclass(frozen=True)
class UnresolvedCall:
    """A call the closed-world resolver declined to guess at."""

    path: str
    line: int
    text: str
    reason: str


@dataclass(frozen=True)
class Resolution:
    """Outcome of resolving one call expression."""

    kind: str  # "function" | "class" | "builtin" | "unresolved"
    function: Optional[FunctionInfo] = None
    cls: Optional[ClassInfo] = None
    #: Receiver expression when the call is a bound method call
    #: (``obj.m(...)``) — the implicit ``self`` argument.
    receiver: Optional[ast.expr] = None
    builtin: str = ""
    reason: str = ""


def _param_names(node: FunctionNode) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    return tuple(names)


def _unparse(node: Optional[ast.expr]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except ValueError:
        return ""


#: Type-wrapper heads whose argument still *is* the annotated value.
_WRAPPER_HEADS = frozenset({"Optional", "Union", "Final", "Annotated",
                            "ClassVar"})

#: Container heads: an annotation ``List[Mask]`` types the *container*,
#: not a ``Mask`` — collapsing it to the element class would resolve
#: methods against the wrong receiver.
_CONTAINER_HEADS = frozenset({
    "List", "Dict", "Tuple", "Set", "FrozenSet", "Sequence",
    "Iterable", "Iterator", "Generator", "AsyncIterator", "Mapping",
    "MutableMapping", "Callable", "Type", "Deque", "DefaultDict",
    "list", "dict", "tuple", "set", "frozenset", "type",
})


def _annotation_names(ann: Optional[ast.expr]) -> List[str]:
    """Candidate class names an annotation types a value as.

    Wrappers (``Optional[Mask]``) are looked through; containers
    (``List[Mask]``) yield nothing — the value is the container, not
    its elements.  String annotations are parsed; unparsable ones
    yield nothing."""
    if ann is None:
        return []
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return []
    if isinstance(ann, ast.Name):
        if ann.id in _WRAPPER_HEADS or ann.id in _CONTAINER_HEADS:
            return []
        return [ann.id]
    if isinstance(ann, ast.Attribute):
        if ann.attr in _WRAPPER_HEADS or ann.attr in _CONTAINER_HEADS:
            return []
        return [ann.attr]
    if isinstance(ann, ast.Subscript):
        head = _head_name(ann.value)
        if head in _WRAPPER_HEADS:
            slices = (ann.slice.elts
                      if isinstance(ann.slice, ast.Tuple)
                      else [ann.slice])
            names: List[str] = []
            for element in slices:
                names.extend(_annotation_names(element))
            return names
        if head in _CONTAINER_HEADS or head is None:
            return []
        return [head]
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return (_annotation_names(ann.left)
                + _annotation_names(ann.right))
    return []


def _head_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class CallGraph:
    """Function/class indexes plus the resolution machinery."""

    def __init__(self, context: Context,
                 prefixes: Tuple[str, ...] = ("repro.",),
                 skip_prefixes: Tuple[str, ...] = ("repro.analysis",),
                 ) -> None:
        self.context = context
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: Per-module local name ⇒ dotted target (imports + local defs).
        self.module_scope: Dict[str, Dict[str, str]] = {}
        self.modules: Set[str] = set()
        self.unresolved: List[UnresolvedCall] = []
        self._miss_seen: Set[Tuple[str, int, str]] = set()
        self._sources: List[SourceFile] = [
            s for s in context.sources
            if s.module.startswith(prefixes)
            and not s.module.startswith(skip_prefixes)
        ]
        self._build()

    # -- construction --------------------------------------------------

    def _build(self) -> None:
        for source in self._sources:
            self.modules.add(source.module)
            self._index_module(source)
        for info in self.classes.values():
            self._collect_attr_types(info)

    def _index_module(self, source: SourceFile) -> None:
        module = source.module
        scope = self.module_scope.setdefault(module, {})
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    scope.setdefault(local, target)
            elif isinstance(node, ast.ImportFrom):
                base = self._absolute_import(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    scope.setdefault(local, f"{base}.{alias.name}")
        for name, fnode in source.functions():
            parts = name.split(".")
            cls = parts[-2] if len(parts) >= 2 else None
            info = FunctionInfo(
                qualname=f"{module}:{name}",
                module=module,
                name=parts[-1],
                cls=cls,
                node=fnode,
                source=source,
                params=_param_names(fnode),
                returns_text=_unparse(fnode.returns),
                is_method=cls is not None,
            )
            self.functions[info.qualname] = info
            if len(parts) == 1:
                scope.setdefault(name, f"{module}.{name}")
        for stmt in source.tree.body:
            if isinstance(stmt, ast.ClassDef):
                self._index_class(source, stmt, scope)

    def _index_class(self, source: SourceFile, node: ast.ClassDef,
                     scope: Dict[str, str]) -> None:
        module = source.module
        info = ClassInfo(
            qualname=f"{module}:{node.name}",
            module=module,
            name=node.name,
            node=node,
            source=source,
            bases=tuple(_unparse(b) for b in node.bases),
        )
        fields: List[str] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{module}:{node.name}.{stmt.name}"
                fn = self.functions.get(qual)
                if fn is not None:
                    info.methods[stmt.name] = fn
                    self.methods_by_name.setdefault(
                        stmt.name, []).append(fn)
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                fields.append(stmt.target.id)
                names = _annotation_names(stmt.annotation)
                if names:
                    info.attr_types.setdefault(stmt.target.id, names[0])
        info.field_order = tuple(fields)
        self.classes[info.qualname] = info
        self.classes_by_name.setdefault(node.name, []).append(info)
        scope.setdefault(node.name, f"{module}.{node.name}")

    def _absolute_import(self, module: str,
                         node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = module.split(".")
        # ``module`` is the importing module; relative level 1 means
        # "this package", which for a non-package module is its parent.
        source = self.context.by_module(module)
        is_package = bool(
            source is not None and source.path.name == "__init__.py"
        )
        drop = node.level - (1 if is_package else 0)
        if drop > 0:
            parts = parts[:-drop] if drop < len(parts) else []
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base or None

    def _collect_attr_types(self, info: ClassInfo) -> None:
        init = info.methods.get("__init__")
        if init is None:
            return
        for stmt in ast.walk(init.node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            ann: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, ann = stmt.target, stmt.value, \
                    stmt.annotation
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            attr = target.attr
            if ann is not None:
                names = _annotation_names(ann)
                if names:
                    info.attr_types.setdefault(attr, names[0])
                    continue
            if isinstance(value, ast.Call):
                resolved = self._resolve_scope_callable(
                    value.func, info.module)
                if isinstance(resolved, ClassInfo):
                    info.attr_types.setdefault(attr, resolved.name)
                elif isinstance(resolved, FunctionInfo):
                    names = _annotation_names(resolved.node.returns)
                    if names:
                        info.attr_types.setdefault(attr, names[0])

    def _resolve_scope_callable(
            self, func: ast.expr, module: str,
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """Resolve a call target using only module-level scope."""
        if isinstance(func, ast.Name):
            target = self.module_scope.get(module, {}).get(func.id)
            if target is not None:
                return self.resolve_dotted(target)
        elif isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            target = self.module_scope.get(module, {}).get(func.value.id)
            if target is not None:
                return self.resolve_dotted(f"{target}.{func.attr}")
        return None

    # -- lookups -------------------------------------------------------

    def resolve_dotted(
            self, dotted: str, _seen: Optional[Set[str]] = None,
    ) -> Optional[Union[FunctionInfo, ClassInfo]]:
        """Resolve ``repro.core.Mask``-style dotted names, chasing
        re-exports through package ``__init__`` import tables."""
        seen = _seen if _seen is not None else set()
        if dotted in seen:
            return None
        seen.add(dotted)
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            if module not in self.modules:
                continue
            return self._lookup(module, parts[cut:], seen)
        return None

    def _lookup(self, module: str, rest: Sequence[str],
                seen: Set[str]) -> Optional[Union[FunctionInfo,
                                                  ClassInfo]]:
        if not rest:
            return None
        head = rest[0]
        found: Optional[Union[FunctionInfo, ClassInfo]]
        found = self.functions.get(f"{module}:{head}")
        if found is None:
            found = self.classes.get(f"{module}:{head}")
        if found is None:
            target = self.module_scope.get(module, {}).get(head)
            if target is not None:
                found = self.resolve_dotted(target, seen)
        if found is None or len(rest) == 1:
            return found
        if isinstance(found, ClassInfo) and len(rest) == 2:
            return self.lookup_method(found, rest[1])
        return None

    def lookup_method(self, cls: ClassInfo,
                      name: str,
                      _seen: Optional[Set[str]] = None,
                      ) -> Optional[FunctionInfo]:
        """Find ``name`` on ``cls`` or, transitively, its bases."""
        seen = _seen if _seen is not None else set()
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        method = cls.methods.get(name)
        if method is not None:
            return method
        for base_text in cls.bases:
            base = self.class_for_name(cls.module, base_text)
            if base is not None:
                method = self.lookup_method(base, name, seen)
                if method is not None:
                    return method
        return None

    def class_for_name(self, module: str,
                       name: str) -> Optional[ClassInfo]:
        """A class by simple or dotted name as seen from ``module``."""
        simple = name.split(".")[-1].split("[")[0]
        target = self.module_scope.get(module, {}).get(simple)
        if target is not None:
            resolved = self.resolve_dotted(target)
            if isinstance(resolved, ClassInfo):
                return resolved
        local = self.classes.get(f"{module}:{simple}")
        if local is not None:
            return local
        candidates = self.classes_by_name.get(simple, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- local type inference ------------------------------------------

    def local_types(self, fn: FunctionInfo) -> Dict[str, ClassInfo]:
        """Statically known receiver types for names local to ``fn``."""
        env: Dict[str, ClassInfo] = {}
        if fn.is_method and fn.cls is not None:
            owner = self.classes.get(f"{fn.module}:{fn.cls}")
            if owner is not None and fn.params:
                env[fn.params[0]] = owner
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is None or arg.arg in env:
                continue
            inferred = self._class_from_annotation(
                fn.module, arg.annotation)
            if inferred is not None:
                env[arg.arg] = inferred
        for stmt in ast.walk(fn.node):
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                inferred = self._class_from_annotation(
                    fn.module, stmt.annotation)
                if inferred is not None:
                    env.setdefault(stmt.target.id, inferred)
            elif isinstance(stmt, ast.Assign) and \
                    len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                inferred = self.expr_class(stmt.value, env, fn.module)
                if inferred is not None:
                    env.setdefault(stmt.targets[0].id, inferred)
        return env

    def _class_from_annotation(self, module: str,
                               ann: ast.expr) -> Optional[ClassInfo]:
        for name in _annotation_names(ann):
            found = self.class_for_name(module, name)
            if found is not None:
                return found
        return None

    def expr_class(self, expr: ast.expr, env: Dict[str, ClassInfo],
                   module: str) -> Optional[ClassInfo]:
        """The class an expression statically evaluates to, if known."""
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            return self.class_for_name(module, expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self.expr_class(expr.value, env, module)
            if owner is None:
                return None
            type_text = owner.attr_types.get(expr.attr)
            if type_text is None:
                return None
            return self.class_for_name(owner.module, type_text)
        if isinstance(expr, ast.Call):
            resolution = self.resolve_call(expr, env, module,
                                           record=False)
            if resolution.kind == "class" and resolution.cls is not None:
                return resolution.cls
            if resolution.kind == "function" and \
                    resolution.function is not None:
                returns = resolution.function.node.returns
                if returns is not None:
                    return self._class_from_annotation(
                        resolution.function.module, returns)
        return None

    # -- call resolution -----------------------------------------------

    def resolve_call(self, call: ast.Call, env: Dict[str, ClassInfo],
                     module: str, record: bool = True) -> Resolution:
        func = call.func
        if isinstance(func, ast.Name):
            target = self.module_scope.get(module, {}).get(func.id)
            if target is not None:
                found = self.resolve_dotted(target)
                if isinstance(found, FunctionInfo):
                    return Resolution("function", function=found)
                if isinstance(found, ClassInfo):
                    return Resolution("class", cls=found)
            if func.id in _BUILTIN_NAMES:
                return Resolution("builtin", builtin=func.id)
            return self._miss(call, module, "unknown name", record)
        if isinstance(func, ast.Attribute):
            owner = self.expr_class(func.value, env, module)
            if owner is not None:
                method = self.lookup_method(owner, func.attr)
                if method is not None:
                    return Resolution("function", function=method,
                                      receiver=func.value)
                return self._miss(
                    call, module,
                    f"no method {func.attr} on {owner.name}", record)
            # Module-attribute call: ``optimize.evaluate_optimized``.
            if isinstance(func.value, ast.Name):
                target = self.module_scope.get(module, {}).get(
                    func.value.id)
                if target is not None:
                    found = self.resolve_dotted(
                        f"{target}.{func.attr}")
                    if isinstance(found, FunctionInfo):
                        return Resolution("function", function=found)
                    if isinstance(found, ClassInfo):
                        return Resolution("class", cls=found)
            candidates = self.methods_by_name.get(func.attr, [])
            if len(candidates) == 1 and \
                    not func.attr.startswith("__"):
                return Resolution("function", function=candidates[0],
                                  receiver=func.value)
            return self._miss(call, module,
                              "receiver type unknown", record)
        if isinstance(func, ast.Lambda):
            return self._miss(call, module, "lambda callable", record)
        return self._miss(call, module, "dynamic callable", record)

    def _miss(self, call: ast.Call, module: str, reason: str,
              record: bool) -> Resolution:
        if record:
            source = self.context.by_module(module)
            path = source.relative if source is not None else module
            line = getattr(call, "lineno", 1)
            key = (path, line, reason)
            if key not in self._miss_seen:
                self._miss_seen.add(key)
                self.unresolved.append(UnresolvedCall(
                    path=path,
                    line=line,
                    text=_unparse(call.func)[:60],
                    reason=reason,
                ))
        return Resolution("unresolved", reason=reason)

    # -- edge enumeration (for ``--graph`` and tests) ------------------

    def edges(self) -> Iterator[Tuple[str, str]]:
        """Every resolved caller→callee pair, deduplicated."""
        seen: Set[Tuple[str, str]] = set()
        for fn in self.functions.values():
            env = self.local_types(fn)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                res = self.resolve_call(node, env, fn.module,
                                        record=False)
                callee: Optional[str] = None
                if res.kind == "function" and res.function is not None:
                    callee = res.function.qualname
                elif res.kind == "class" and res.cls is not None:
                    callee = res.cls.qualname
                if callee is not None:
                    pair = (fn.qualname, callee)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair


def build_graph(context: Context) -> CallGraph:
    """Build (or fetch the cached) call graph for ``context``."""
    cached = context.cache.get("flow.graph")
    if isinstance(cached, CallGraph):
        return cached
    graph = CallGraph(context)
    context.cache["flow.graph"] = graph
    return graph
