"""Summary-based forward taint propagation over the call graph.

Each function gets a :class:`Summary`: which *tokens* its return value
(or yielded values) may carry, and which of its parameters flow into a
user-facing sink unsanitized.  Tokens are either :data:`SOURCE` (raw
backend/evaluation data) or a parameter index; summaries are joined to
a fixpoint with a worklist, so taint crosses function boundaries in
both directions — a function returning its tainted argument and a
function sinking its parameter are both visible to every caller.

Propagation is deliberately conservative-but-closed-world:

* attribute access, subscripting, tuple/list packing, comprehensions
  and the registered repackaging builtins *preserve* taint;
* constructors of project classes preserve the union of their argument
  taints (wrapping rows in a ``Relation`` does not launder them) —
  except registered sink envelopes, whose results are clean because
  their checked payload was verified on the way in;
* calls that cannot be resolved in the closed world *drop* taint; they
  are recorded as unresolved (``--graph``) rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis import registry
from repro.analysis.flow.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    Resolution,
)
from repro.analysis.framework import Context, Violation

#: The taint token for raw backend/evaluation data.
SOURCE = "source"

#: A taint token: :data:`SOURCE` or a parameter index.
Token = Union[int, str]

TokenSet = FrozenSet[Token]

_EMPTY: TokenSet = frozenset()


@dataclass(frozen=True)
class Summary:
    """What a function does with taint, from a caller's viewpoint."""

    returns: TokenSet = _EMPTY
    sink_params: FrozenSet[int] = frozenset()


@dataclass
class SinkHit:
    """A tainted value reaching a checked sink argument."""

    function: FunctionInfo
    node: ast.AST
    description: str
    tokens: TokenSet


@dataclass
class _BodyResult:
    returns: Set[Token] = field(default_factory=set)
    sink_params: Set[int] = field(default_factory=set)
    hits: List[SinkHit] = field(default_factory=list)


class TaintAnalysis:
    """The SL010 fixpoint: summaries, then violations."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.summaries: Dict[str, Summary] = {}
        self.violations: List[Violation] = []
        self._sources: FrozenSet[str] = registry.TAINT_SOURCES
        self._sanitizers: FrozenSet[str] = registry.TAINT_SANITIZERS
        self._sinks = registry.TAINT_SINKS
        self._sink_methods = registry.TAINT_SINK_METHODS
        self._yield_types = registry.TAINT_YIELD_TYPES
        self._preserving = registry.TAINT_PRESERVING_CALLS
        self._callers: Dict[str, Set[str]] = {}
        self._types: Dict[str, Dict[str, ClassInfo]] = {}

    # -- driver --------------------------------------------------------

    def run(self) -> List[Violation]:
        functions = list(self.graph.functions.values())
        for fn in functions:
            self.summaries[fn.qualname] = Summary()
        # First full pass records the caller map for the worklist.
        worklist: List[str] = []
        for fn in functions:
            if self._update(fn):
                worklist.append(fn.qualname)
        rounds = 0
        while worklist and rounds < 50_000:
            rounds += 1
            qual = worklist.pop()
            for caller in sorted(self._callers.get(qual, ())):
                fn = self.graph.functions[caller]
                if self._update(fn) and caller not in worklist:
                    worklist.append(caller)
        # Summaries are stable; one reporting pass collects the hits.
        hits: List[SinkHit] = []
        for fn in functions:
            hits.extend(self._analyze(fn).hits)
        self.violations = [self._violation(h) for h in hits]
        return self.violations

    def _update(self, fn: FunctionInfo) -> bool:
        result = self._analyze(fn)
        old = self.summaries[fn.qualname]
        returns: TokenSet = frozenset(result.returns)
        if fn.qualname in self._sources:
            returns = frozenset({SOURCE})
        elif fn.qualname in self._sanitizers:
            returns = _EMPTY
        new = Summary(returns=returns,
                      sink_params=frozenset(result.sink_params))
        if new == old:
            return False
        self.summaries[fn.qualname] = new
        return True

    def _violation(self, hit: SinkHit) -> Violation:
        line = getattr(hit.node, "lineno", 1)
        return Violation(
            "SL010", hit.function.source.relative, line,
            f"unmasked backend/evaluation data reaches {hit.description}"
            f" in {hit.function.qualname}; route the value through a"
            f" registered mask application (registry.TAINT_SANITIZERS)"
            f" or suppress with a justification",
        )

    # -- per-function analysis -----------------------------------------

    def _analyze(self, fn: FunctionInfo) -> _BodyResult:
        types = self._types.get(fn.qualname)
        if types is None:
            types = self.graph.local_types(fn)
            self._types[fn.qualname] = types
        frame = _Frame(self, fn, types)
        return frame.run()

    def summary_for(self, qual: str) -> Summary:
        return self.summaries.get(qual, Summary())

    def note_call(self, caller: str, callee: str) -> None:
        self._callers.setdefault(callee, set()).add(caller)


class _Frame:
    """One flow-insensitive pass over a single function body."""

    def __init__(self, analysis: TaintAnalysis, fn: FunctionInfo,
                 types: Dict[str, ClassInfo]) -> None:
        self.analysis = analysis
        self.graph = analysis.graph
        self.fn = fn
        self.types = types
        self.env: Dict[str, Set[Token]] = {
            name: {index} for index, name in enumerate(fn.params)
        }
        self.result = _BodyResult()
        self.is_yield_sink = any(
            marker in fn.returns_text
            for marker in analysis._yield_types
        )
        #: Sink hits are only recorded once the env has stabilized,
        #: so the fixpoint iterations don't duplicate them.
        self._collect = False

    def run(self) -> _BodyResult:
        for _ in range(8):
            before = {k: set(v) for k, v in self.env.items()}
            for stmt in self.fn.node.body:
                self._stmt(stmt)
            if self.env == before:
                break
        self._collect = True
        for stmt in self.fn.node.body:
            self._stmt(stmt)
        return self.result

    # -- statements ----------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are separate functions
        if isinstance(stmt, ast.Assign):
            tokens = self._taint(stmt.value)
            for target in stmt.targets:
                self._bind(target, tokens)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._taint(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            tokens = self._taint(stmt.value)
            if isinstance(stmt.target, ast.Name):
                tokens = tokens | self.env.get(stmt.target.id, set())
            self._bind(stmt.target, tokens)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.result.returns |= self._taint(stmt.value)
        elif isinstance(stmt, ast.Expr):
            self._taint(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._taint(stmt.iter))
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.If)):
            self._taint(stmt.test)
            self._block(stmt.body)
            self._block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tokens = self._taint(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tokens)
            self._block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._block(stmt.body)
            for handler in stmt.handlers:
                self._block(handler.body)
            self._block(stmt.orelse)
            self._block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._taint(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._taint(stmt.test)
        elif isinstance(stmt, (ast.Match,)):
            self._taint(stmt.subject)
            for case in stmt.cases:
                self._block(case.body)

    def _block(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _bind(self, target: ast.expr, tokens: Set[Token]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, set()) | tokens
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, tokens)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tokens)
        # Attribute/subscript stores would need a heap model; skipped.

    # -- expressions ---------------------------------------------------

    def _taint(self, expr: Optional[ast.expr]) -> Set[Token]:
        if expr is None:
            return set()
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, set()))
        if isinstance(expr, ast.Attribute):
            return self._taint(expr.value)
        if isinstance(expr, ast.Subscript):
            return self._taint(expr.value) | self._taint(expr.slice)
        if isinstance(expr, ast.Starred):
            return self._taint(expr.value)
        if isinstance(expr, ast.Await):
            return self._taint(expr.value)
        if isinstance(expr, ast.NamedExpr):
            tokens = self._taint(expr.value)
            self._bind(expr.target, tokens)
            return tokens
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            tokens: Set[Token] = set()
            for element in expr.elts:
                tokens |= self._taint(element)
            return tokens
        if isinstance(expr, ast.Dict):
            tokens = set()
            for key in expr.keys:
                if key is not None:
                    tokens |= self._taint(key)
            for value in expr.values:
                tokens |= self._taint(value)
            return tokens
        if isinstance(expr, ast.IfExp):
            self._taint(expr.test)
            return self._taint(expr.body) | self._taint(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            tokens = set()
            for value in expr.values:
                tokens |= self._taint(value)
            return tokens
        if isinstance(expr, ast.BinOp):
            return self._taint(expr.left) | self._taint(expr.right)
        if isinstance(expr, ast.UnaryOp):
            return self._taint(expr.operand)
        if isinstance(expr, ast.Compare):
            self._taint(expr.left)
            for comparator in expr.comparators:
                self._taint(comparator)
            return set()
        if isinstance(expr, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp)):
            return self._comprehension(
                [expr.elt], expr.generators)
        if isinstance(expr, ast.DictComp):
            return self._comprehension(
                [expr.key, expr.value], expr.generators)
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            tokens = self._taint(expr.value)
            self.result.returns |= tokens
            if self.is_yield_sink:
                self._check_sink(
                    tokens, expr,
                    "a user-delivered chunk yield")
            return set()
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Lambda):
            return set()
        if isinstance(expr, ast.JoinedStr):
            return set()
        return set()

    def _comprehension(self, elements: Sequence[ast.expr],
                       generators: Sequence[ast.comprehension],
                       ) -> Set[Token]:
        for generator in generators:
            iter_tokens = self._taint(generator.iter)
            self._bind(generator.target, iter_tokens)
            for condition in generator.ifs:
                self._taint(condition)
        tokens: Set[Token] = set()
        for element in elements:
            tokens |= self._taint(element)
        return tokens

    # -- calls ---------------------------------------------------------

    def _call(self, call: ast.Call) -> Set[Token]:
        # Delivery methods are sinks regardless of receiver type
        # (futures are stdlib, outside the closed world).
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in self.analysis._sink_methods:
            self._taint(call.func.value)
            for arg in call.args:
                self._check_sink(
                    self._taint(arg), call,
                    f"a client delivery call .{call.func.attr}(...)")
            for keyword in call.keywords:
                self._check_sink(
                    self._taint(keyword.value), call,
                    f"a client delivery call .{call.func.attr}(...)")
            return set()
        resolution = self.graph.resolve_call(
            call, self.types, self.fn.module)
        if resolution.kind == "function" and \
                resolution.function is not None:
            return self._function_call(call, resolution)
        if resolution.kind == "class" and resolution.cls is not None:
            return self._constructor_call(call, resolution.cls)
        # Builtins and unresolved calls: evaluate arguments for their
        # side effects on the env, then drop or preserve taint.
        tokens: Set[Token] = set()
        for arg in call.args:
            tokens |= self._taint(arg)
        for keyword in call.keywords:
            tokens |= self._taint(keyword.value)
        name = ""
        if isinstance(call.func, ast.Name):
            name = call.func.id
        elif isinstance(call.func, ast.Attribute):
            name = call.func.attr
            self._taint(call.func.value)
        if name in self.analysis._preserving:
            return tokens
        return set()

    def _function_call(self, call: ast.Call,
                       resolution: Resolution) -> Set[Token]:
        callee = resolution.function
        assert callee is not None
        self.analysis.note_call(self.fn.qualname, callee.qualname)
        qual = callee.qualname
        bound = self._bind_arguments(call, callee, resolution.receiver)
        arg_taints: Dict[int, Set[Token]] = {
            index: self._taint(arg) for index, arg in bound.items()
        }
        if qual in self.analysis._sanitizers:
            return set()
        if qual in self.analysis._sources:
            return {SOURCE}
        summary = self.analysis.summary_for(qual)
        for index in summary.sink_params:
            tokens = arg_taints.get(index, set())
            self._check_sink(
                tokens, call,
                f"parameter {callee.params[index]!r} of"
                f" {qual} (which forwards it to a sink)",
            )
        tokens = set()
        for token in summary.returns:
            if token == SOURCE:
                tokens.add(SOURCE)
            elif isinstance(token, int):
                tokens |= arg_taints.get(token, set())
        return tokens

    def _constructor_call(self, call: ast.Call,
                          cls: ClassInfo) -> Set[Token]:
        self.analysis.note_call(self.fn.qualname, cls.qualname)
        sink = self.analysis._sinks.get(cls.qualname)
        if sink is None:
            tokens: Set[Token] = set()
            for arg in call.args:
                tokens |= self._taint(arg)
            for keyword in call.keywords:
                tokens |= self._taint(keyword.value)
            return tokens
        # Sink envelope: check the named parameters, return clean.
        names = self._constructor_params(cls)
        for index, arg in enumerate(call.args):
            arg_tokens = self._taint(arg)
            name = names[index] if index < len(names) else f"#{index}"
            if sink.params is None or name in sink.params:
                self._check_sink(
                    arg_tokens, call,
                    f"sink {cls.name}({name}=...)")
        for keyword in call.keywords:
            arg_tokens = self._taint(keyword.value)
            if keyword.arg is None:
                continue
            if sink.params is None or keyword.arg in sink.params:
                self._check_sink(
                    arg_tokens, call,
                    f"sink {cls.name}({keyword.arg}=...)")
        return set()

    def _constructor_params(self, cls: ClassInfo) -> Tuple[str, ...]:
        init = self.graph.lookup_method(cls, "__init__")
        if init is not None and len(init.params) > 1:
            return init.params[1:]
        return cls.field_order

    def _bind_arguments(self, call: ast.Call, callee: FunctionInfo,
                        receiver: Optional[ast.expr],
                        ) -> Dict[int, ast.expr]:
        bound: Dict[int, ast.expr] = {}
        offset = 0
        if receiver is not None and callee.is_method:
            bound[0] = receiver
            offset = 1
        for position, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                self._taint(arg)
                continue
            bound[position + offset] = arg
        params = list(callee.params)
        for keyword in call.keywords:
            if keyword.arg is None:
                self._taint(keyword.value)
                continue
            if keyword.arg in params:
                bound[params.index(keyword.arg)] = keyword.value
        return bound

    # -- sinks ---------------------------------------------------------

    def _check_sink(self, tokens: Set[Token], node: ast.AST,
                    description: str) -> None:
        if SOURCE in tokens and self._collect:
            self.result.hits.append(SinkHit(
                function=self.fn, node=node,
                description=description,
                tokens=frozenset(tokens),
            ))
        for token in tokens:
            if isinstance(token, int):
                self.result.sink_params.add(token)
