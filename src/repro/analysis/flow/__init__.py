"""Whole-program (interprocedural) soundlint passes.

The :mod:`callgraph` builder and :mod:`dataflow` engine are shared
between the SL010 taint rule (:mod:`taint`) and the SL011 lockset rule
(:mod:`locks`) through the analysis cache on
:class:`~repro.analysis.framework.Context`, so a run parses and
resolves the tree exactly once however many whole-program rules are
selected.
"""

from __future__ import annotations

from typing import List

from repro.analysis.flow.callgraph import (
    CallGraph,
    ClassInfo,
    FunctionInfo,
    build_graph,
)
from repro.analysis.flow.dataflow import SOURCE, Summary, TaintAnalysis
from repro.analysis.flow.locks import lock_edges
from repro.analysis.flow.taint import taint_for
from repro.analysis.framework import Context


def render_graph(context: Context) -> str:
    """Human-readable dump of the call graph and lock-order graph,
    behind the CLI's ``--graph`` flag."""
    analysis = taint_for(context)
    graph = analysis.graph
    edges = list(graph.edges())
    lines: List[str] = [
        "call graph:",
        f"  functions: {len(graph.functions)}",
        f"  classes:   {len(graph.classes)}",
        f"  resolved call edges: {len(edges)}",
        f"  unresolved calls:    {len(graph.unresolved)}",
    ]
    for miss in graph.unresolved[:20]:
        lines.append(
            f"    {miss.path}:{miss.line}: {miss.text} ({miss.reason})"
        )
    if len(graph.unresolved) > 20:
        lines.append(
            f"    ... {len(graph.unresolved) - 20} more"
        )
    declared, observed = lock_edges(context)
    lines.append("lock-order graph:")
    lines.append("  declared:")
    for outer, inner in declared:
        lines.append(f"    {outer} -> {inner}")
    lines.append("  observed:")
    if observed:
        for outer, inner in sorted(set(observed)):
            lines.append(f"    {outer} -> {inner}")
    else:
        lines.append("    (none)")
    return "\n".join(lines)


__all__ = [
    "SOURCE",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "Summary",
    "TaintAnalysis",
    "build_graph",
    "lock_edges",
    "render_graph",
    "taint_for",
]
