"""SL011 — lockset race detection for the serving/resilience layer.

Three checks over the classes in ``registry.GUARDED_FIELDS``:

* **Guarded fields**: each registered class's listed attributes may
  only be read or written inside ``with self.<lock>:`` or from a
  *held method* (one documented as "caller holds the lock" — listed
  in the registry or named ``*_locked``).  ``__init__`` is exempt:
  construction is single-threaded.
* **Lock discovery**: a :mod:`threading` lock created in ``__init__``
  of a class in the patrolled modules with no registry entry is
  itself a violation, so the registry cannot rot silently.
* **Lock order**: while a registered lock is held, a call into
  another registered class's lock-acquiring method is an
  acquisition-order edge.  Every observed edge must be declared in
  ``registry.LOCK_ORDER`` and the declared ∪ observed graph must stay
  acyclic — the machine-checked form of the old prose rule that the
  server's ``_work`` may be held while taking the admission
  controller's lock, never the reverse.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis import registry
from repro.analysis.flow.callgraph import (
    CallGraph,
    ClassInfo,
    build_graph,
)
from repro.analysis.framework import Context, Violation, rule

#: An acquisition-order edge: ``module:Class.lockattr`` pairs.
Edge = Tuple[str, str]


def _lock_node(cls_key: str, lock: str) -> str:
    return f"{cls_key}.{lock}"


def _is_self_attr(expr: ast.expr, attr: str) -> bool:
    return (
        isinstance(expr, ast.Attribute)
        and expr.attr == attr
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    )


def _held_names(cls_key: str,
                spec: "registry.GuardedClass",
                info: Optional[ClassInfo]) -> FrozenSet[str]:
    names = set(spec.held_methods)
    if info is not None:
        names |= {
            name for name in info.methods if name.endswith("_locked")
        }
    return frozenset(names)


def _acquiring_methods(info: ClassInfo, lock: str) -> FrozenSet[str]:
    """Methods whose bodies take ``with self.<lock>:`` themselves."""
    found: Set[str] = set()
    for name, method in info.methods.items():
        if name == "__init__":
            continue
        for node in ast.walk(method.node):
            if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                    _is_self_attr(item.context_expr, lock)
                    for item in node.items):
                found.add(name)
                break
    return frozenset(found)


class _ClassChecker:
    """Checks one registered class's methods for lockset violations."""

    def __init__(self, graph: CallGraph, cls_key: str,
                 spec: "registry.GuardedClass", info: ClassInfo,
                 acquiring: Dict[str, FrozenSet[str]]) -> None:
        self.graph = graph
        self.cls_key = cls_key
        self.spec = spec
        self.info = info
        self.held_names = _held_names(cls_key, spec, info)
        #: ``module:Class`` ⇒ that class's lock-acquiring methods.
        self.acquiring = acquiring
        self.violations: List[Violation] = []
        self.observed: List[Tuple[Edge, Violation]] = []

    def run(self) -> None:
        for name, method in self.info.methods.items():
            if name == "__init__":
                continue
            held = name in self.held_names
            self._types = self.graph.local_types(method)
            self._visit(method.node.body, held)

    # -- traversal -----------------------------------------------------

    def _visit(self, body: Sequence[ast.stmt], held: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested defs run on their own schedule
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = False
                for item in stmt.items:
                    if _is_self_attr(item.context_expr, self.spec.lock):
                        acquired = True
                    else:
                        self._expr(item.context_expr, held)
                self._visit(stmt.body, held or acquired)
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, held)
                elif isinstance(child, ast.stmt):
                    self._visit([child], held)
                elif isinstance(child, ast.ExceptHandler):
                    self._visit(child.body, held)
                elif isinstance(child, ast.keyword):
                    self._expr(child.value, held)
                elif isinstance(child, ast.match_case):
                    self._visit(child.body, held)

    def _expr(self, expr: ast.expr, held: bool) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and \
                    isinstance(node.value, ast.Name) and \
                    node.value.id == "self" and \
                    node.attr in self.spec.fields and not held:
                action = "written" if isinstance(
                    node.ctx, (ast.Store, ast.Del)) else "read"
                self._violate(
                    node,
                    f"guarded field self.{node.attr} {action} outside"
                    f" 'with self.{self.spec.lock}'"
                    f" (registry.GUARDED_FIELDS[{self.cls_key!r}])",
                )
            elif isinstance(node, ast.Call):
                self._call(node, held)

    def _call(self, call: ast.Call, held: bool) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        if isinstance(func.value, ast.Name) and \
                func.value.id == "self" and \
                func.attr in self.held_names and not held:
            self._violate(
                call,
                f"call to held-method self.{func.attr}() outside"
                f" 'with self.{self.spec.lock}' — its body assumes"
                f" the lock is held",
            )
            return
        if not held:
            return
        # Holding our lock while calling into another registered
        # class's lock-acquiring method is an acquisition-order edge.
        receiver = self.graph.expr_class(
            func.value, self._types, self.info.module)
        if receiver is None or receiver.qualname == self.cls_key:
            return
        other = self.acquiring.get(receiver.qualname)
        if other is None or func.attr not in other:
            return
        guarded = registry.GUARDED_FIELDS[receiver.qualname]
        edge = (
            _lock_node(self.cls_key, self.spec.lock),
            _lock_node(receiver.qualname, guarded.lock),
        )
        self.observed.append((edge, Violation(
            "SL011", self.info.source.relative,
            getattr(call, "lineno", 1),
            f"undeclared lock-order edge {edge[0]} -> {edge[1]};"
            f" declare it in registry.LOCK_ORDER or drop the nested"
            f" acquisition",
        )))

    def _violate(self, node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            "SL011", self.info.source.relative,
            getattr(node, "lineno", 1), message,
        ))


def lock_edges(context: Context) -> Tuple[List[Edge], List[Edge]]:
    """(declared, observed) acquisition-order edges, for ``--graph``."""
    declared = [tuple(edge) for edge in registry.LOCK_ORDER]
    observed: List[Edge] = []
    for checker in _checkers(context):
        checker.run()
        observed.extend(edge for edge, _ in checker.observed)
    return list(declared), observed


def _checkers(context: Context) -> Iterator[_ClassChecker]:
    graph = build_graph(context)
    acquiring: Dict[str, FrozenSet[str]] = {}
    present: Dict[str, ClassInfo] = {}
    for cls_key, spec in registry.GUARDED_FIELDS.items():
        info = graph.classes.get(cls_key)
        if info is None:
            continue
        present[cls_key] = info
        acquiring[cls_key] = (
            _acquiring_methods(info, spec.lock)
            | _held_names(cls_key, spec, info)
        )
    for cls_key, info in present.items():
        yield _ClassChecker(graph, cls_key,
                            registry.GUARDED_FIELDS[cls_key], info,
                            acquiring)


def _discover_locks(graph: CallGraph) -> Iterator[Violation]:
    """Flag threading locks in patrolled ``__init__``s that have no
    registry entry, and registry locks that are never created."""
    for info in graph.classes.values():
        if not info.module.startswith(registry.LOCK_MODULE_PREFIXES):
            continue
        init = info.methods.get("__init__")
        created: Dict[str, int] = {}
        if init is not None:
            for stmt in ast.walk(init.node):
                if not (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Attribute)
                        and isinstance(stmt.targets[0].value, ast.Name)
                        and stmt.targets[0].value.id == "self"
                        and isinstance(stmt.value, ast.Call)):
                    continue
                func = stmt.value.func
                name = ""
                if isinstance(func, ast.Name):
                    name = func.id
                elif isinstance(func, ast.Attribute) and \
                        isinstance(func.value, ast.Name) and \
                        func.value.id == "threading":
                    name = func.attr
                if name in registry.LOCK_FACTORIES:
                    created[stmt.targets[0].attr] = stmt.lineno
        spec = registry.GUARDED_FIELDS.get(info.qualname)
        if spec is None:
            for attr, line in sorted(created.items()):
                yield Violation(
                    "SL011", info.source.relative, line,
                    f"undeclared lock self.{attr} in {info.qualname};"
                    f" declare its guarded fields in"
                    f" registry.GUARDED_FIELDS",
                )
        elif created and spec.lock not in created:
            yield Violation(
                "SL011", info.source.relative, info.node.lineno,
                f"registry declares lock {spec.lock!r} for"
                f" {info.qualname} but __init__ never creates it",
            )


def _find_cycle(edges: Iterable[Edge]) -> Optional[List[str]]:
    graph: Dict[str, Set[str]] = {}
    for outer, inner in edges:
        graph.setdefault(outer, set()).add(inner)
        graph.setdefault(inner, set())
    state: Dict[str, int] = {}
    stack: List[str] = []

    def visit(node: str) -> Optional[List[str]]:
        state[node] = 1
        stack.append(node)
        for neighbour in sorted(graph.get(node, ())):
            mark = state.get(neighbour, 0)
            if mark == 1:
                return stack[stack.index(neighbour):] + [neighbour]
            if mark == 0:
                cycle = visit(neighbour)
                if cycle is not None:
                    return cycle
        stack.pop()
        state[node] = 2
        return None

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def _anchor_for(context: Context, node: str) -> Tuple[str, int]:
    cls_key = node.rsplit(".", 1)[0]
    graph = build_graph(context)
    info = graph.classes.get(cls_key)
    if info is not None:
        return info.source.relative, info.node.lineno
    module = cls_key.split(":", 1)[0]
    source = context.by_module(module)
    if source is not None:
        return source.relative, 1
    return module, 1


@rule(
    "SL011",
    "lockset race detector",
    "guarded fields may only be touched under their registered lock, "
    "and the lock-acquisition-order graph must match the declared "
    "order and stay acyclic",
    scope="project",
)
def check_locksets(context: Context) -> Iterable[Violation]:
    graph = build_graph(context)
    violations: List[Violation] = list(_discover_locks(graph))
    declared: Set[Edge] = {
        (outer, inner) for outer, inner in registry.LOCK_ORDER
    }
    observed: List[Tuple[Edge, Violation]] = []
    for checker in _checkers(context):
        checker.run()
        violations.extend(checker.violations)
        observed.extend(checker.observed)
    seen: Set[Edge] = set()
    for edge, violation in observed:
        if edge not in declared and edge not in seen:
            seen.add(edge)
            violations.append(violation)
    all_edges = declared | {edge for edge, _ in observed}
    cycle = _find_cycle(all_edges)
    if cycle is not None:
        path, line = _anchor_for(context, cycle[0])
        chain = " -> ".join(cycle)
        violations.append(Violation(
            "SL011", path, line,
            f"lock-acquisition-order graph has a cycle: {chain};"
            f" fix registry.LOCK_ORDER or the nested acquisition",
        ))
    return violations
