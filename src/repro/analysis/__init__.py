"""``soundlint``: a soundness-invariant static analyzer for the engine.

The test suite can only *sample* the invariants the engine's value
rests on; this package makes them unskippable at merge time by checking
them syntactically over the whole tree (cf. Guarnieri et al., "Strong
and Provably Secure Database Access Control": enforcement mechanisms
want machine-checked guarantees, not just tests).  The rules:

========  ==========================================================
SL001     broad ``except`` only at registered fail-closed boundaries
SL002     every meta-algebra operator charges the ``Budget``
SL003     operators never mutate ``MaskTable``/``Mask``/``MetaTuple``
          parameters
SL004     cache/canonical key construction is deterministic
SL005     every compiled/streaming fast path has a registered
          reference oracle and a differential test
SL006     examples and workloads never read relations around
          ``engine.authorize``
SL007     strict annotation coverage (the offline face of the
          ``mypy --strict`` CI gate)
SL008     every execution backend has a registered oracle backend
          and a differential parity test
========  ==========================================================

``docs/STATIC_ANALYSIS.md`` documents each rule, the invariant it
encodes and the paper section it protects, the suppression syntax, and
how to add a rule.  Run the analyzer with ``repro-soundlint`` (console
script) or ``python -m repro.analysis``.
"""

from __future__ import annotations

from repro.analysis.framework import (
    Report,
    SourceFile,
    Violation,
    all_rules,
    run_paths,
)

__all__ = [
    "Report",
    "SourceFile",
    "Violation",
    "all_rules",
    "run_paths",
]
