"""The ``repro-soundlint`` command line.

Usage::

    repro-soundlint [PATH ...] [--format human|json]
                    [--select SL001,SL002] [--ignore SL006]
                    [--list-rules]

With no paths, analyzes ``src`` and ``examples`` under the current
directory (the repository layout).  Exit status: 0 clean, 1 when any
violation is reported, 2 for usage errors — so CI can gate merges on
the analyzer directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.framework import all_rules, run_paths


def _split_rules(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-soundlint",
        description="soundness-invariant static analyzer for the "
                    "repro engine",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: src examples)",
    )
    parser.add_argument(
        "--format", choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--graph", action="store_true",
        help="print the whole-program call graph and lock-order "
             "graph instead of running the rules",
    )
    parser.add_argument(
        "--select", metavar="RULES", default=None,
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES", default=None,
        help="comma-separated rule IDs to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for info in sorted(all_rules().values(), key=lambda r: r.id):
            print(f"{info.id}  {info.title}\n       {info.rationale}")
        return 0

    paths = [Path(p) for p in options.paths]
    if not paths:
        paths = [p for p in (Path("src"), Path("examples"))
                 if p.exists()]
        if not paths:
            parser.error("no paths given and no src/examples found")
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(
            "no such path: " + ", ".join(str(p) for p in missing)
        )

    if options.graph:
        print(render_context_graph(paths))
        return 0

    report = run_paths(
        paths,
        select=_split_rules(options.select),
        ignore=_split_rules(options.ignore),
    )
    if options.format == "json":
        print(report.render_json())
    elif options.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_human())
    return 0 if report.clean else 1


def render_context_graph(paths: Sequence[Path]) -> str:
    """Parse ``paths`` and dump the flow layer's debug graph."""
    from repro.analysis.flow import render_graph
    from repro.analysis.framework import (
        Context,
        SourceFile,
        collect_files,
        find_root,
        load_source,
    )

    root = find_root(list(paths))
    sources: List[SourceFile] = []
    for path in collect_files(paths):
        source, _failure = load_source(path, root)
        if source is not None:
            sources.append(source)
    return render_graph(Context(root=root, sources=sources))


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    sys.exit(main())
