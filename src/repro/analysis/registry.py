"""The invariant registry soundlint checks the tree against.

Everything deliberately *allowed* to look dangerous is registered here,
by name, in one reviewable place: the fail-closed exception boundaries,
the compiled/streaming fast paths with their reference oracles, and the
module sets each rule patrols.  Widening an entry is a reviewable act;
code that merely drifts does not get to widen it implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

# ----------------------------------------------------------------------
# SL001 — fail-closed exception discipline
# ----------------------------------------------------------------------

#: ``module:qualname`` of the only functions allowed to catch broad
#: ``Exception``: the engine's two authorize boundaries and the
#: degradation ladder's rung loop.  Everything else must narrow to
#: :class:`~repro.errors.ReproError` subtypes or re-raise.
FAIL_CLOSED_BOUNDARIES: FrozenSet[str] = frozenset({
    "repro.core.engine:AuthorizationEngine.authorize",
    "repro.core.engine:AuthorizationEngine.authorize_batch",
    "repro.core.engine:AuthorizationEngine.authorize_degraded",
    # The streaming pair: establishment failures fail the whole stream
    # closed, delivery failures fail the *remainder* closed.
    "repro.core.engine:AuthorizationEngine.authorize_stream",
    "repro.core.engine:AuthorizationEngine._stream_chunks",
    "repro.metaalgebra.ladder:derive_mask_resilient",
})

# ----------------------------------------------------------------------
# SL002 — budget coverage
# ----------------------------------------------------------------------

#: Modules whose public operators must charge the derivation
#: :class:`~repro.metaalgebra.budget.Budget` before returning
#: materialized rows.
BUDGETED_MODULES: FrozenSet[str] = frozenset({
    "repro.metaalgebra.product",
    "repro.metaalgebra.selection",
    "repro.metaalgebra.projection",
    "repro.metaalgebra.selfjoin",
    "repro.metaalgebra.prune",
})

#: Budget methods that count as charging (row/pool caps).
BUDGET_CHARGES: FrozenSet[str] = frozenset({
    "charge_rows", "charge_selfjoin",
})

# ----------------------------------------------------------------------
# SL003 — meta-table immutability
# ----------------------------------------------------------------------

#: Parameter types operators must treat as immutable.
IMMUTABLE_TYPES: FrozenSet[str] = frozenset({
    "MaskTable", "MaskRow", "Mask", "MetaTuple", "MetaCell",
})

#: Module prefixes the immutability rule patrols.
IMMUTABLE_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro.metaalgebra.",
    "repro.core.mask",
    "repro.core.compiled_mask",
)

#: Method names that mutate their receiver.
MUTATOR_METHODS: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
})

# ----------------------------------------------------------------------
# SL004 — determinism of cache/canonical keys
# ----------------------------------------------------------------------

#: Modules whose outputs become cache keys and must be deterministic
#: across processes and runs.
DETERMINISTIC_MODULES: FrozenSet[str] = frozenset({
    "repro.metaalgebra.canonical",
    "repro.core.cache",
    # Resilience policy must be replayable: retry schedules hash their
    # seed instead of sampling, and the breaker's clock is injected.
    "repro.resilience.retry",
    "repro.resilience.breaker",
})

#: Modules whose mere import is a nondeterminism smell in key code.
NONDETERMINISTIC_IMPORTS: FrozenSet[str] = frozenset({
    "random", "uuid", "secrets", "time", "datetime",
})

# ----------------------------------------------------------------------
# SL005 — oracle parity for fast paths
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OracleEntry:
    """A fast path's reference implementation and differential test."""

    oracle: str  # dotted qualname of the reference implementation
    test: str    # repo-relative path of the differential test module


#: Every compiled/streaming fast path must appear here, paired with the
#: interpreted/materializing oracle it must stay byte-identical to and
#: the differential suite that enforces the identity.
FAST_PATHS: Dict[str, OracleEntry] = {
    "repro.core.compiled_mask.compile_mask": OracleEntry(
        oracle="repro.core.mask.Mask.apply",
        test="tests/property/test_compiled_mask.py",
    ),
    # The columnar kernel and its chunk-streamed form both answer to
    # the interpreted Mask.apply, like the row kernel above.
    "repro.core.compiled_mask.apply_mask_columnar": OracleEntry(
        oracle="repro.core.mask.Mask.apply",
        test="tests/property/test_columnar_relation.py",
    ),
    "repro.core.compiled_mask.iter_apply_chunked": OracleEntry(
        oracle="repro.core.mask.Mask.apply",
        test="tests/property/test_chunked_apply.py",
    ),
    "repro.algebra.optimize.iter_evaluate_optimized": OracleEntry(
        oracle="repro.algebra.optimize.evaluate_optimized",
        test="tests/property/test_chunked_apply.py",
    ),
    "repro.metaalgebra.product.meta_product_streaming": OracleEntry(
        oracle="repro.metaalgebra.product.meta_product",
        test="tests/property/test_streaming_product.py",
    ),
}

#: Name shapes that mark a module-level function as a fast path in
#: need of registration (checked against public names only).  The
#: calculus *compilers* (``compile_query`` — AST to plan) are not fast
#: paths, so plain ``compile_`` is not a marker; a fast path announces
#: itself either by name or by living in a marked module (below).
FAST_PATH_MARKERS: Tuple[str, ...] = (
    "compiled", "streaming", "columnar", "chunked",
)

#: Modules that *contain* fast paths: every public ``compile_*`` /
#: ``*_streaming`` function defined here must be registered.
FAST_PATH_MODULES: FrozenSet[str] = frozenset({
    "repro.core.compiled_mask",
    "repro.metaalgebra.product",
})

# ----------------------------------------------------------------------
# SL008 — execution-backend parity
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackendEntry:
    """An execution backend's oracle and differential parity suite."""

    oracle: str  # dotted qualname of the oracle backend class
    test: str    # repo-relative path of the parity test module


#: Every non-oracle execution backend must appear here, paired with
#: the oracle backend it must stay sorted-row identical to and the
#: differential suite that enforces the identity (the backend analogue
#: of :data:`FAST_PATHS`).
EXECUTION_BACKENDS: Dict[str, BackendEntry] = {
    "repro.backends.sqlite.SQLiteBackend": BackendEntry(
        oracle="repro.backends.python.PythonBackend",
        test="tests/property/test_backend_parity.py",
    ),
    "repro.backends.duckdb.DuckDBBackend": BackendEntry(
        oracle="repro.backends.python.PythonBackend",
        test="tests/property/test_backend_parity.py",
    ),
}

#: Backend-shaped classes that need no parity entry: the protocol
#: itself and the oracle (a backend cannot oracle itself).
BACKEND_EXEMPT: FrozenSet[str] = frozenset({
    "repro.backends.base.ExecutionBackend",
    "repro.backends.python.PythonBackend",
})

#: Module prefix the backend-discovery sweep patrols.
BACKEND_MODULE_PREFIX = "repro.backends."

# ----------------------------------------------------------------------
# SL009 — failover paths pinned to the registered oracle
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FailoverEntry:
    """A failover path's oracle target and its parity suite."""

    oracle: str  # dotted qualname of the oracle backend class
    test: str    # repo-relative path of the parity test module


#: Every retry/breaker/failover wrapper that can re-route evaluation
#: away from the configured backend must appear here, paired with the
#: oracle backend it re-routes *to* and the differential suite proving
#: the re-routed answers match.  Failing over to anything but the
#: registered oracle would turn an availability mechanism into a
#: soundness hole; this registry (checked by rule SL009) forbids it.
FAILOVER_PATHS: Dict[str, FailoverEntry] = {
    "repro.resilience.failover.ResilientExecutor": FailoverEntry(
        oracle="repro.backends.python.PythonBackend",
        test="tests/test_failover.py",
    ),
}

#: Module prefix the failover-discovery sweep patrols: any class here
#: holding both a primary backend and a fallback target is presumed a
#: failover path and must be registered.
FAILOVER_MODULE_PREFIX = "repro.resilience."

#: Attribute names whose *assignment targets* mark a class in the
#: patrolled modules as failover-shaped (it routes between engines).
FAILOVER_MARKERS: FrozenSet[str] = frozenset({
    "oracle", "fallback",
})

# ----------------------------------------------------------------------
# SL006 — no authorize bypass in examples/workloads
# ----------------------------------------------------------------------

#: Module prefixes that must route every data read through
#: ``engine.authorize`` (demo and workload code is what readers copy;
#: test and benchmark code is where a bypass would quietly become
#: load-bearing).  Oracle/differential harnesses, where the bypass IS
#: the point, carry justified ``disable-file=SL006`` suppressions.
AUTHORIZE_ONLY_PREFIXES: Tuple[str, ...] = (
    "examples.",
    "repro.workloads.",
    "tests.",
    "benchmarks.",
)

#: Direct evaluation entry points that bypass the mask.
BYPASS_CALLS: FrozenSet[str] = frozenset({
    "evaluate", "evaluate_optimized",
})

#: Imports that put a bypass in reach.
BYPASS_IMPORTS: FrozenSet[str] = frozenset({
    "repro.algebra.evaluate", "repro.algebra.optimize",
})

# ----------------------------------------------------------------------
# SL010 — interprocedural mask-escape taint
# ----------------------------------------------------------------------

#: ``module:qualname`` of every function whose *return value* is raw,
#: unmasked data: backend reads and direct evaluation of a plan.  The
#: taint pass marks their results as sources regardless of what their
#: bodies look like.
TAINT_SOURCES: FrozenSet[str] = frozenset({
    # The backend protocol and every implementation of it.
    "repro.backends.base:ExecutionBackend.execute",
    "repro.backends.base:ExecutionBackend.execute_stream",
    "repro.backends.common:_SQLBackend.execute",
    "repro.backends.python:PythonBackend.execute",
    "repro.backends.python:PythonBackend.execute_stream",
    # The failover wrapper re-exposes the backend's raw results.
    "repro.resilience.failover:ResilientExecutor.execute",
    "repro.resilience.failover:ResilientExecutor.execute_stream",
    # Direct evaluation of a plan, optimized or not, chunked or not.
    "repro.algebra.evaluate:evaluate",
    "repro.algebra.optimize:evaluate_optimized",
    "repro.algebra.optimize:iter_evaluate_optimized",
    # Raw relation access on the catalog.
    "repro.algebra.database:Database.instance",
})

#: ``module:qualname`` of every function whose return value is
#: *masked* data: the registered mask applications (the SL005 fast
#: paths and their oracle) plus the masked backend entry points.  A
#: tainted value passed through one of these comes out clean.
TAINT_SANITIZERS: FrozenSet[str] = frozenset({
    "repro.core.mask:Mask.apply",
    "repro.core.compiled_mask:CompiledMask.apply",
    "repro.core.compiled_mask:CompiledMask.apply_rows",
    "repro.core.compiled_mask:CompiledMask.apply_columns",
    "repro.core.compiled_mask:apply_mask_columnar",
    "repro.core.compiled_mask:iter_apply_chunked",
    # Masked execution applies the mask inside the backend.
    "repro.backends.base:ExecutionBackend.execute_masked",
    "repro.backends.common:_SQLBackend.execute_masked",
    "repro.backends.python:PythonBackend.execute_masked",
    "repro.resilience.failover:ResilientExecutor.execute_masked",
    # The ladder derives masks (meta-data, never user rows); its
    # output feeds the sanitizers above rather than carrying data.
    "repro.metaalgebra.ladder:derive_mask_resilient",
})


@dataclass(frozen=True)
class TaintSink:
    """A user-facing sink the taint pass checks arguments at.

    ``params`` restricts the check to the named constructor/call
    parameters; ``None`` means every argument is checked.  Sink
    constructors are *envelopes*: their result is clean, because the
    envelope's checked payload was verified on the way in and its
    unchecked fields are internal bookkeeping.
    """

    params: Optional[FrozenSet[str]] = None
    reason: str = ""


#: ``module:qualname`` of every user-facing sink constructor.  A value
#: still tainted when it reaches a checked parameter is a mask escape.
TAINT_SINKS: Dict[str, TaintSink] = {
    # Only ``delivered`` is user-visible; ``answer`` is the raw
    # pre-mask relation the engine keeps for stats/auditing and is
    # *expected* to be tainted.
    "repro.core.answer:AuthorizedAnswer": TaintSink(
        params=frozenset({"delivered"}),
        reason="delivered rows are the user-visible payload",
    ),
    # Audit records are shape-only by design (PAPER: the audit trail
    # must not widen the disclosure channel) — no argument may carry
    # raw rows.
    "repro.core.audit:AuditRecord": TaintSink(
        params=None,
        reason="audit records must stay shape-only",
    ),
    # The stream envelope takes no row payload at construction; its
    # rows flow through the chunk-yield sink below.
    "repro.core.stream:AnswerStream": TaintSink(
        params=frozenset(),
        reason="rows are delivered via the chunk-yield sink",
    ),
}

#: Method names that deliver a value to a waiting client.  Any call
#: ``x.<name>(value)`` is a sink on every argument (serving responses:
#: ``Future.set_result``).
TAINT_SINK_METHODS: FrozenSet[str] = frozenset({
    "set_result",
})

#: Return-annotation markers for *yield sinks*: a generator whose
#: return annotation mentions one of these types delivers each yielded
#: value to the user, so every ``yield`` is a checked sink.
TAINT_YIELD_TYPES: FrozenSet[str] = frozenset({
    "MaskedChunk",
})

#: Calls that merely repackage their arguments: the result's taint is
#: the union of the argument taints.  Everything else unresolved drops
#: taint (documented unsoundness — the closed world ends at the
#: stdlib).
TAINT_PRESERVING_CALLS: FrozenSet[str] = frozenset({
    "tuple", "list", "set", "frozenset", "dict", "iter", "next",
    "sorted", "reversed", "zip", "enumerate", "chain",
})

# ----------------------------------------------------------------------
# SL011 — lockset race detection in serving/resilience
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GuardedClass:
    """A class whose listed fields are guarded by one of its locks.

    ``lock`` names the attribute holding the :mod:`threading` lock (or
    condition); ``fields`` are the attributes that must only be read or
    written inside ``with self.<lock>:`` (or from a held method).
    ``held_methods`` are methods documented as *caller holds the lock*
    — their bodies are checked as if the lock were held, and calls to
    them from outside a held scope are violations.  Methods whose name
    ends in ``_locked`` are implicitly held methods.
    """

    lock: str
    fields: FrozenSet[str]
    held_methods: FrozenSet[str] = field(default_factory=frozenset)


#: ``module:Class`` ⇒ guarded-field declaration for every lock-owning
#: class in the patrolled modules.  A lock created in ``__init__`` of a
#: patrolled class that has no entry here is itself a violation
#: (undeclared lock), so this table cannot rot silently.
GUARDED_FIELDS: Dict[str, GuardedClass] = {
    # Promoted from the prose lock-ordering note in server.py: _work
    # guards all queueing/scheduling state; _schedule documents
    # "caller holds _work".
    "repro.serving.server:AuthorizationServer": GuardedClass(
        lock="_work",
        fields=frozenset({
            "_queues", "_ready", "_scheduled", "_busy", "_stamps",
            "_closing", "_served", "_batches", "_batched_requests",
            "_largest_batch",
        }),
        held_methods=frozenset({"_schedule"}),
    ),
    "repro.serving.admission:AdmissionController": GuardedClass(
        lock="_lock",
        fields=frozenset({
            "_backlog", "_max_backlog", "_admitted", "_completed",
            "_hard_sheds", "_soft_sheds", "_deadline_sheds",
            "_tenant_floors",
        }),
    ),
    "repro.serving.tenants:TenantRegistry": GuardedClass(
        lock="_lock",
        fields=frozenset({"_tenants"}),
    ),
    "repro.resilience.breaker:CircuitBreaker": GuardedClass(
        lock="_lock",
        fields=frozenset({
            "_state", "_failures", "_opened_at", "_probing",
            "_opened", "_reclosed",
        }),
    ),
}

#: Declared lock-acquisition order, as ``(outer, inner)`` edges over
#: ``module:Class.lockattr`` nodes.  The server's condition may be
#: held while taking the admission controller's lock, never the
#: reverse; engine and cache locks are leaves.  The observed-edge
#: graph must be a subset of this declaration and the union must stay
#: acyclic.
LOCK_ORDER: Tuple[Tuple[str, str], ...] = (
    (
        "repro.serving.server:AuthorizationServer._work",
        "repro.serving.admission:AdmissionController._lock",
    ),
)

#: Module prefixes the lockset rule patrols for lock discovery and
#: guarded-field enforcement.
LOCK_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro.serving.",
    "repro.resilience.",
)

#: Constructor names (from :mod:`threading`) that create a lock.
LOCK_FACTORIES: FrozenSet[str] = frozenset({
    "Lock", "RLock", "Condition",
})
