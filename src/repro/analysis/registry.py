"""The invariant registry soundlint checks the tree against.

Everything deliberately *allowed* to look dangerous is registered here,
by name, in one reviewable place: the fail-closed exception boundaries,
the compiled/streaming fast paths with their reference oracles, and the
module sets each rule patrols.  Widening an entry is a reviewable act;
code that merely drifts does not get to widen it implicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

# ----------------------------------------------------------------------
# SL001 — fail-closed exception discipline
# ----------------------------------------------------------------------

#: ``module:qualname`` of the only functions allowed to catch broad
#: ``Exception``: the engine's two authorize boundaries and the
#: degradation ladder's rung loop.  Everything else must narrow to
#: :class:`~repro.errors.ReproError` subtypes or re-raise.
FAIL_CLOSED_BOUNDARIES: FrozenSet[str] = frozenset({
    "repro.core.engine:AuthorizationEngine.authorize",
    "repro.core.engine:AuthorizationEngine.authorize_batch",
    "repro.core.engine:AuthorizationEngine.authorize_degraded",
    # The streaming pair: establishment failures fail the whole stream
    # closed, delivery failures fail the *remainder* closed.
    "repro.core.engine:AuthorizationEngine.authorize_stream",
    "repro.core.engine:AuthorizationEngine._stream_chunks",
    "repro.metaalgebra.ladder:derive_mask_resilient",
})

# ----------------------------------------------------------------------
# SL002 — budget coverage
# ----------------------------------------------------------------------

#: Modules whose public operators must charge the derivation
#: :class:`~repro.metaalgebra.budget.Budget` before returning
#: materialized rows.
BUDGETED_MODULES: FrozenSet[str] = frozenset({
    "repro.metaalgebra.product",
    "repro.metaalgebra.selection",
    "repro.metaalgebra.projection",
    "repro.metaalgebra.selfjoin",
    "repro.metaalgebra.prune",
})

#: Budget methods that count as charging (row/pool caps).
BUDGET_CHARGES: FrozenSet[str] = frozenset({
    "charge_rows", "charge_selfjoin",
})

# ----------------------------------------------------------------------
# SL003 — meta-table immutability
# ----------------------------------------------------------------------

#: Parameter types operators must treat as immutable.
IMMUTABLE_TYPES: FrozenSet[str] = frozenset({
    "MaskTable", "MaskRow", "Mask", "MetaTuple", "MetaCell",
})

#: Module prefixes the immutability rule patrols.
IMMUTABLE_MODULE_PREFIXES: Tuple[str, ...] = (
    "repro.metaalgebra.",
    "repro.core.mask",
    "repro.core.compiled_mask",
)

#: Method names that mutate their receiver.
MUTATOR_METHODS: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
})

# ----------------------------------------------------------------------
# SL004 — determinism of cache/canonical keys
# ----------------------------------------------------------------------

#: Modules whose outputs become cache keys and must be deterministic
#: across processes and runs.
DETERMINISTIC_MODULES: FrozenSet[str] = frozenset({
    "repro.metaalgebra.canonical",
    "repro.core.cache",
    # Resilience policy must be replayable: retry schedules hash their
    # seed instead of sampling, and the breaker's clock is injected.
    "repro.resilience.retry",
    "repro.resilience.breaker",
})

#: Modules whose mere import is a nondeterminism smell in key code.
NONDETERMINISTIC_IMPORTS: FrozenSet[str] = frozenset({
    "random", "uuid", "secrets", "time", "datetime",
})

# ----------------------------------------------------------------------
# SL005 — oracle parity for fast paths
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OracleEntry:
    """A fast path's reference implementation and differential test."""

    oracle: str  # dotted qualname of the reference implementation
    test: str    # repo-relative path of the differential test module


#: Every compiled/streaming fast path must appear here, paired with the
#: interpreted/materializing oracle it must stay byte-identical to and
#: the differential suite that enforces the identity.
FAST_PATHS: Dict[str, OracleEntry] = {
    "repro.core.compiled_mask.compile_mask": OracleEntry(
        oracle="repro.core.mask.Mask.apply",
        test="tests/property/test_compiled_mask.py",
    ),
    # The columnar kernel and its chunk-streamed form both answer to
    # the interpreted Mask.apply, like the row kernel above.
    "repro.core.compiled_mask.apply_mask_columnar": OracleEntry(
        oracle="repro.core.mask.Mask.apply",
        test="tests/property/test_columnar_relation.py",
    ),
    "repro.core.compiled_mask.iter_apply_chunked": OracleEntry(
        oracle="repro.core.mask.Mask.apply",
        test="tests/property/test_chunked_apply.py",
    ),
    "repro.algebra.optimize.iter_evaluate_optimized": OracleEntry(
        oracle="repro.algebra.optimize.evaluate_optimized",
        test="tests/property/test_chunked_apply.py",
    ),
    "repro.metaalgebra.product.meta_product_streaming": OracleEntry(
        oracle="repro.metaalgebra.product.meta_product",
        test="tests/property/test_streaming_product.py",
    ),
}

#: Name shapes that mark a module-level function as a fast path in
#: need of registration (checked against public names only).  The
#: calculus *compilers* (``compile_query`` — AST to plan) are not fast
#: paths, so plain ``compile_`` is not a marker; a fast path announces
#: itself either by name or by living in a marked module (below).
FAST_PATH_MARKERS: Tuple[str, ...] = (
    "compiled", "streaming", "columnar", "chunked",
)

#: Modules that *contain* fast paths: every public ``compile_*`` /
#: ``*_streaming`` function defined here must be registered.
FAST_PATH_MODULES: FrozenSet[str] = frozenset({
    "repro.core.compiled_mask",
    "repro.metaalgebra.product",
})

# ----------------------------------------------------------------------
# SL008 — execution-backend parity
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackendEntry:
    """An execution backend's oracle and differential parity suite."""

    oracle: str  # dotted qualname of the oracle backend class
    test: str    # repo-relative path of the parity test module


#: Every non-oracle execution backend must appear here, paired with
#: the oracle backend it must stay sorted-row identical to and the
#: differential suite that enforces the identity (the backend analogue
#: of :data:`FAST_PATHS`).
EXECUTION_BACKENDS: Dict[str, BackendEntry] = {
    "repro.backends.sqlite.SQLiteBackend": BackendEntry(
        oracle="repro.backends.python.PythonBackend",
        test="tests/property/test_backend_parity.py",
    ),
    "repro.backends.duckdb.DuckDBBackend": BackendEntry(
        oracle="repro.backends.python.PythonBackend",
        test="tests/property/test_backend_parity.py",
    ),
}

#: Backend-shaped classes that need no parity entry: the protocol
#: itself and the oracle (a backend cannot oracle itself).
BACKEND_EXEMPT: FrozenSet[str] = frozenset({
    "repro.backends.base.ExecutionBackend",
    "repro.backends.python.PythonBackend",
})

#: Module prefix the backend-discovery sweep patrols.
BACKEND_MODULE_PREFIX = "repro.backends."

# ----------------------------------------------------------------------
# SL009 — failover paths pinned to the registered oracle
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FailoverEntry:
    """A failover path's oracle target and its parity suite."""

    oracle: str  # dotted qualname of the oracle backend class
    test: str    # repo-relative path of the parity test module


#: Every retry/breaker/failover wrapper that can re-route evaluation
#: away from the configured backend must appear here, paired with the
#: oracle backend it re-routes *to* and the differential suite proving
#: the re-routed answers match.  Failing over to anything but the
#: registered oracle would turn an availability mechanism into a
#: soundness hole; this registry (checked by rule SL009) forbids it.
FAILOVER_PATHS: Dict[str, FailoverEntry] = {
    "repro.resilience.failover.ResilientExecutor": FailoverEntry(
        oracle="repro.backends.python.PythonBackend",
        test="tests/test_failover.py",
    ),
}

#: Module prefix the failover-discovery sweep patrols: any class here
#: holding both a primary backend and a fallback target is presumed a
#: failover path and must be registered.
FAILOVER_MODULE_PREFIX = "repro.resilience."

#: Attribute names whose *assignment targets* mark a class in the
#: patrolled modules as failover-shaped (it routes between engines).
FAILOVER_MARKERS: FrozenSet[str] = frozenset({
    "oracle", "fallback",
})

# ----------------------------------------------------------------------
# SL006 — no authorize bypass in examples/workloads
# ----------------------------------------------------------------------

#: Module prefixes that must route every data read through
#: ``engine.authorize`` (demo and workload code is what readers copy).
AUTHORIZE_ONLY_PREFIXES: Tuple[str, ...] = (
    "examples.",
    "repro.workloads.",
)

#: Direct evaluation entry points that bypass the mask.
BYPASS_CALLS: FrozenSet[str] = frozenset({
    "evaluate", "evaluate_optimized",
})

#: Imports that put a bypass in reach.
BYPASS_IMPORTS: FrozenSet[str] = frozenset({
    "repro.algebra.evaluate", "repro.algebra.optimize",
})
