"""The soundlint rule framework.

Rules are small functions registered with the :func:`rule` decorator.
A *file rule* receives one :class:`SourceFile` at a time; a *project
rule* receives the whole :class:`Context` once (for cross-file
invariants such as oracle parity).  Both yield :class:`Violation`
records, which the runner filters through the suppression comments and
renders as human-readable lines or JSON.

Suppression syntax (checked per rule ID, reason optional but
encouraged):

* ``# soundlint: disable=SL006 -- reason`` on the line the violation
  is reported at (the flagged statement's *first* line);
* ``# soundlint: disable-file=SL001,SL002`` anywhere in the file.

The analyzer itself fails closed: a file that cannot be read or parsed
is reported as an ``SL000`` violation rather than silently skipped —
an unanalyzable file must not pass the gate.
"""

from __future__ import annotations

import ast
import io
import json
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: Rule ID reserved for files the analyzer could not read or parse.
PARSE_RULE = "SL000"

#: Either flavour of function definition node.
FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_SUPPRESS_RE = re.compile(
    r"#\s*soundlint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
)


def _comments(text: str) -> List[Tuple[int, str]]:
    """(line, text) for every comment token in ``text``.

    Files that do not tokenize are handled by the SL000 parse gate;
    they have no effective suppressions.
    """
    found: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                found.append((token.start[0], token.string))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return []
    return found


@dataclass(frozen=True)
class Violation:
    """One rule finding, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class SourceFile:
    """One parsed python file plus its suppression directives."""

    def __init__(self, path: Path, root: Path, text: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.root = root
        self.text = text
        self.tree = tree
        #: Dotted module name (``repro.core.engine``; files outside
        #: ``src`` key by their root-relative path, e.g.
        #: ``examples.quickstart``).
        self.module = module_name(path, root)
        #: Root-relative posix path used in reports.
        self.relative = relative_path(path, root)
        self.line_disables: Dict[int, FrozenSet[str]] = {}
        self.file_disables: FrozenSet[str] = frozenset()
        #: Rule ⇒ line of the ``disable-file`` comment declaring it
        #: (for unused-suppression reporting).
        self.file_disable_lines: Dict[str, int] = {}
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        # Tokenize so only *comments* count — a docstring that merely
        # documents the suppression syntax must not disable anything.
        file_rules: set = set()
        for number, comment in _comments(self.text):
            match = _SUPPRESS_RE.search(comment)
            if match is None:
                continue
            rules = frozenset(
                r.strip() for r in match.group("rules").split(",")
            )
            if match.group(1) == "disable-file":
                file_rules |= rules
                for rule_id in rules:
                    self.file_disable_lines.setdefault(rule_id, number)
            else:
                self.line_disables[number] = (
                    self.line_disables.get(number, frozenset()) | rules
                )
        self.file_disables = frozenset(file_rules)

    def suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_disables:
            return True
        return rule_id in self.line_disables.get(line, frozenset())

    # -- convenience accessors used by several rules -------------------

    def functions(self) -> Iterator[Tuple[str, FunctionNode]]:
        """Every function with its dotted qualname (``Class.method``)."""

        def walk(body: Sequence[ast.stmt],
                 prefix: str) -> Iterator[Tuple[str, FunctionNode]]:
            for node in body:
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    name = f"{prefix}{node.name}"
                    yield name, node
                    yield from walk(node.body, f"{name}.")
                elif isinstance(node, ast.ClassDef):
                    yield from walk(node.body, f"{prefix}{node.name}.")

        return walk(self.tree.body, "")

    def violation(self, rule_id: str, node: ast.AST,
                  message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        return Violation(rule_id, self.relative, line, message)


@dataclass
class Context:
    """Everything a project-scope rule may inspect."""

    root: Path
    sources: List[SourceFile]
    #: Scratch space shared by whole-program rules so the call graph
    #: and dataflow fixpoint are built once per run, not per rule.
    cache: Dict[str, object] = field(default_factory=dict)

    def by_module(self, module: str) -> Optional[SourceFile]:
        for source in self.sources:
            if source.module == module:
                return source
        return None


#: Signature of a file-scope rule check.
FileCheck = Callable[[SourceFile], Iterable[Violation]]
#: Signature of a project-scope rule check.
ProjectCheck = Callable[[Context], Iterable[Violation]]


@dataclass(frozen=True)
class RuleInfo:
    """A registered rule: identity, documentation, and its check."""

    id: str
    title: str
    rationale: str
    scope: str  # "file" | "project"
    check: Callable[..., Iterable[Violation]]


_RULES: Dict[str, RuleInfo] = {}


def rule(rule_id: str, title: str, rationale: str,
         scope: str = "file") -> Callable[
             [Callable[..., Iterable[Violation]]],
             Callable[..., Iterable[Violation]]]:
    """Register a check function under ``rule_id``.

    ``scope`` is ``"file"`` (check called once per source file) or
    ``"project"`` (called once with the whole :class:`Context`).
    """
    if scope not in ("file", "project"):
        raise ValueError(f"unknown rule scope {scope!r}")

    def register(check: Callable[..., Iterable[Violation]]
                 ) -> Callable[..., Iterable[Violation]]:
        if rule_id in _RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        _RULES[rule_id] = RuleInfo(rule_id, title, rationale, scope,
                                   check)
        return check

    return register


def all_rules() -> Dict[str, RuleInfo]:
    """The registered rules (importing the built-in rule modules)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return dict(_RULES)


# ----------------------------------------------------------------------
# path helpers
# ----------------------------------------------------------------------


def module_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path``, anchored at ``src`` when present."""
    try:
        parts = list(path.resolve().relative_to(root.resolve()).parts)
    except ValueError:
        parts = list(path.parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    dotted = [p for p in parts[:-1]] + [path.stem]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted)


def relative_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def find_root(paths: Sequence[Path]) -> Path:
    """The repository root: the nearest ancestor holding ``src``."""
    for candidate in paths:
        probe = candidate.resolve()
        if probe.is_file():
            probe = probe.parent
        while True:
            if (probe / "src").is_dir() or probe.name == "src":
                return probe if probe.name != "src" else probe.parent
            if probe.parent == probe:
                break
            probe = probe.parent
    return Path.cwd()


def collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    # Stable order, no duplicates.
    seen: set = set()
    unique: List[Path] = []
    for path in files:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


@dataclass
class Report:
    """Outcome of one analyzer run."""

    violations: List[Violation] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    #: Wall-clock analyzer time in seconds (recorded in the CI log to
    #: watch for runtime regressions).
    elapsed: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.violations

    def render_human(self) -> str:
        lines = [v.render() for v in self.violations]
        noun = "violation" if len(self.violations) == 1 else "violations"
        lines.append(
            f"soundlint: {len(self.violations)} {noun} in "
            f"{self.files_scanned} files ({self.suppressed} suppressed)"
            f" [{self.elapsed:.2f}s]"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "files_scanned": self.files_scanned,
                "suppressed": self.suppressed,
                "elapsed_s": round(self.elapsed, 3),
                "violations": [v.to_json() for v in self.violations],
            },
            indent=2,
        )

    def render_sarif(self) -> str:
        """SARIF 2.1.0, the interchange format CI uploads so findings
        annotate pull-request diffs."""
        rules = all_rules()
        descriptors = [
            {
                "id": info.id,
                "shortDescription": {"text": info.title},
                "fullDescription": {"text": info.rationale},
            }
            for info in sorted(rules.values(), key=lambda r: r.id)
        ]
        descriptors.insert(0, {
            "id": PARSE_RULE,
            "shortDescription": {"text": "analyzer parse gate"},
            "fullDescription": {
                "text": "files that cannot be analyzed and stale "
                        "suppressions fail closed",
            },
        })
        results = [
            {
                "ruleId": v.rule,
                "level": "error",
                "message": {"text": v.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {"startLine": max(v.line, 1)},
                    },
                }],
            }
            for v in self.violations
        ]
        return json.dumps(
            {
                "$schema": (
                    "https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                ),
                "version": "2.1.0",
                "runs": [{
                    "tool": {
                        "driver": {
                            "name": "repro-soundlint",
                            "rules": descriptors,
                        },
                    },
                    "results": results,
                }],
            },
            indent=2,
        )


def load_source(path: Path, root: Path) -> Tuple[Optional[SourceFile],
                                                 Optional[Violation]]:
    """Parse one file, failing closed into an SL000 violation."""
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, ValueError) as error:
        line = getattr(error, "lineno", None) or 1
        return None, Violation(
            PARSE_RULE, relative_path(path, root), int(line),
            f"file could not be analyzed: {error}",
        )
    return SourceFile(path, root, text, tree), None


def run_paths(paths: Sequence[Path],
              select: Optional[Iterable[str]] = None,
              ignore: Optional[Iterable[str]] = None,
              root: Optional[Path] = None) -> Report:
    """Analyze every python file under ``paths`` with the active rules."""
    started = time.monotonic()
    rules = all_rules()
    chosen = {
        info.id: info for info in rules.values()
        if (select is None or info.id in set(select))
        and (ignore is None or info.id not in set(ignore))
    }
    root = root if root is not None else find_root(list(paths))
    report = Report()
    sources: List[SourceFile] = []
    for path in collect_files(paths):
        source, failure = load_source(path, root)
        report.files_scanned += 1
        if failure is not None:
            report.violations.append(failure)
            continue
        assert source is not None
        sources.append(source)

    context = Context(root=root, sources=sources)
    raw: List[Violation] = []
    for info in chosen.values():
        if info.scope == "file":
            for source in sources:
                raw.extend(info.check(source))
        else:
            raw.extend(info.check(context))

    by_path = {source.relative: source for source in sources}
    used_line: set = set()
    used_file: set = set()
    for violation in raw:
        source = by_path.get(violation.path)
        if source is None:
            report.violations.append(violation)
            continue
        if violation.rule in source.file_disables:
            used_file.add((violation.path, violation.rule))
            report.suppressed += 1
            continue
        if violation.rule in source.line_disables.get(violation.line,
                                                      frozenset()):
            used_line.add((violation.path, violation.line,
                           violation.rule))
            report.suppressed += 1
            continue
        report.violations.append(violation)

    report.violations.extend(_unused_suppressions(
        sources, chosen, rules, select, used_line, used_file,
    ))
    report.violations.sort(key=lambda v: (v.path, v.line, v.rule))
    report.elapsed = time.monotonic() - started
    return report


def _unused_suppressions(sources: Sequence[SourceFile],
                         chosen: Dict[str, "RuleInfo"],
                         rules: Dict[str, "RuleInfo"],
                         select: Optional[Iterable[str]],
                         used_line: set,
                         used_file: set) -> List[Violation]:
    """SL000-class warnings for suppressions that suppressed nothing.

    A suppression is *relevant* when its rule actually ran in this
    invocation (so a ``--select`` subset never flags the others'
    suppressions) or, in a full run, when it names a rule that does
    not exist — a stale or typoed suppression can never fire and must
    not linger as if it were load-bearing.
    """
    findings: List[Violation] = []

    def relevant(rule_id: str) -> bool:
        return rule_id in chosen or (
            select is None and rule_id not in rules
        )

    for source in sources:
        for line, disabled in sorted(source.line_disables.items()):
            for rule_id in sorted(disabled):
                if not relevant(rule_id):
                    continue
                if (source.relative, line, rule_id) in used_line:
                    continue
                findings.append(Violation(
                    PARSE_RULE, source.relative, line,
                    f"unused suppression: {rule_id} reports no "
                    f"violation at this line — remove the stale "
                    f"disable comment",
                ))
        for rule_id in sorted(source.file_disables):
            if not relevant(rule_id):
                continue
            if (source.relative, rule_id) in used_file:
                continue
            findings.append(Violation(
                PARSE_RULE, source.relative,
                source.file_disable_lines.get(rule_id, 1),
                f"unused suppression: {rule_id} reports no violation "
                f"in this file — remove the stale disable-file "
                f"comment",
            ))
    return findings
