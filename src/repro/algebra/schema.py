"""Relation schemes and database schemes (Section 2 of the paper).

A :class:`RelationSchema` is a named, ordered list of attributes, each
with a domain, plus an optional primary key.  Keys are not part of the
paper's formal model but are required by the self-join refinement of
Section 4.2, which demands that combined subviews "can participate in a
lossless join (for example, both subviews include the key of this
relation)".

A :class:`DatabaseSchema` is a set of relation schemes indexed by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Iterable, Iterator, Tuple

from repro.algebra.types import Domain
from repro.errors import (
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)


@dataclass(frozen=True)
class Attribute:
    """A named attribute with an associated domain."""

    name: str
    domain: Domain

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid attribute name {self.name!r}")

    def __str__(self) -> str:
        return f"{self.name}:{self.domain}"


@dataclass(frozen=True)
class RelationSchema:
    """A relation scheme: a name, attributes, and an optional key.

    Attributes:
        name: relation name, e.g. ``"EMPLOYEE"``.
        attributes: ordered attributes of the scheme.
        key: names of the attributes forming the primary key, or an
            empty tuple when no key is declared.  The key is only used
            by the lossless self-join refinement; everything else in the
            model works without it.
    """

    name: str
    attributes: Tuple[Attribute, ...]
    key: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be nonempty")
        if not self.attributes:
            raise SchemaError(f"relation {self.name!r} has no attributes")
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {self.name!r} has duplicate attributes")
        for key_attr in self.key:
            if key_attr not in names:
                raise SchemaError(
                    f"key attribute {key_attr!r} not in relation {self.name!r}"
                )

    @property
    def arity(self) -> int:
        """The number of attributes in the scheme."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """The attribute names, in scheme order."""
        return tuple(a.name for a in self.attributes)

    @cached_property
    def _index_map(self) -> Dict[str, int]:
        """Attribute name → position, built once per scheme.

        Plan compilation and canonicalization resolve attributes
        constantly; the linear scan this replaces was measurable on
        wide schemes.  The dataclass is frozen, so the map can never
        go stale (``cached_property`` writes straight to ``__dict__``,
        which frozen dataclasses without ``__slots__`` still have).
        """
        return {a.name: i for i, a in enumerate(self.attributes)}

    def has_attribute(self, name: str) -> bool:
        """Report whether ``name`` is an attribute of this scheme."""
        return name in self._index_map

    def index_of(self, name: str) -> int:
        """Return the position of attribute ``name``.

        Raises:
            UnknownAttributeError: when the attribute does not exist.
        """
        try:
            return self._index_map[name]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def attribute(self, name: str) -> Attribute:
        """Return the attribute named ``name``."""
        return self.attributes[self.index_of(name)]

    def domain_of(self, name: str) -> Domain:
        """Return the domain of attribute ``name``."""
        return self.attribute(name).domain

    def key_indices(self) -> Tuple[int, ...]:
        """Positions of the key attributes (empty when keyless)."""
        return tuple(self.index_of(k) for k in self.key)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __str__(self) -> str:
        attrs = ", ".join(a.name for a in self.attributes)
        return f"{self.name}({attrs})"


def make_schema(
    name: str,
    attributes: Iterable[Tuple[str, Domain]],
    key: Iterable[str] = (),
) -> RelationSchema:
    """Convenience constructor from ``(name, domain)`` pairs.

    Example:
        >>> from repro.algebra.types import STRING, INTEGER
        >>> make_schema("EMPLOYEE", [("NAME", STRING), ("SALARY", INTEGER)],
        ...             key=["NAME"]).arity
        2
    """
    return RelationSchema(
        name=name,
        attributes=tuple(Attribute(n, d) for n, d in attributes),
        key=tuple(key),
    )


@dataclass
class DatabaseSchema:
    """A database scheme: a collection of relation schemes.

    Iteration order is insertion order, which the workload generators
    rely on for determinism.
    """

    relations: Dict[str, RelationSchema] = field(default_factory=dict)

    def add(self, schema: RelationSchema) -> None:
        """Register a relation scheme.

        Raises:
            SchemaError: when a scheme with the same name exists.
        """
        if schema.name in self.relations:
            raise SchemaError(f"relation {schema.name!r} already in scheme")
        self.relations[schema.name] = schema

    def get(self, name: str) -> RelationSchema:
        """Return the scheme of relation ``name``.

        Raises:
            UnknownRelationError: when no such relation exists.
        """
        try:
            return self.relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def names(self) -> Tuple[str, ...]:
        """All relation names, in registration order."""
        return tuple(self.relations)


def qualified_label(relation: str, occurrence: int, attribute: str,
                    multi: bool = False) -> str:
    """Render a column label in the paper's display style.

    Single-occurrence relations display as ``NAME``; when a relation
    appears several times in an expression the paper writes
    ``EMPLOYEE:1.NAME`` and labels result columns ``NAME:1`` — we follow
    the same convention via the ``multi`` flag.
    """
    if multi:
        return f"{attribute}:{occurrence}"
    return attribute
