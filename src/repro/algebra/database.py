"""Database instances.

A :class:`Database` binds a :class:`~repro.algebra.schema.DatabaseSchema`
to one relation instance per scheme (Section 2: "a database instance D
of the database scheme R is a set of relations R1(D), ..., Rn(D)").

Instances are mutable at the granularity of whole-relation replacement
and row insertion/deletion; the update-permission extension uses the
row-level operations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.algebra.relation import Relation, Row
from repro.algebra.schema import DatabaseSchema, RelationSchema
from repro.errors import SchemaError, UnknownRelationError


class Database:
    """A database schema together with an instance of every relation."""

    def __init__(self, schema: DatabaseSchema) -> None:
        self.schema = schema
        self._instances: Dict[str, Relation] = {
            rel.name: Relation.from_schema(rel, ()) for rel in schema
        }
        # Per-relation mutation counters.  Execution backends that
        # keep their own copy of the data (repro.backends) compare
        # these against the versions they loaded and re-sync only the
        # relations that actually changed.
        self._versions: Dict[str, int] = {
            rel.name: 0 for rel in schema
        }

    # ------------------------------------------------------------------
    # schema-level operations
    # ------------------------------------------------------------------

    def add_relation(self, schema: RelationSchema,
                     rows: Iterable[Row] = ()) -> None:
        """Add a new relation scheme and (optionally) its rows."""
        self.schema.add(schema)
        self._instances[schema.name] = Relation.from_schema(schema, rows)
        self._bump(schema.name)

    def relation_names(self) -> Tuple[str, ...]:
        """Names of all relations, in registration order."""
        return self.schema.names()

    def schema_of(self, name: str) -> RelationSchema:
        """The scheme of relation ``name``."""
        return self.schema.get(name)

    # ------------------------------------------------------------------
    # instance-level operations
    # ------------------------------------------------------------------

    def instance(self, name: str) -> Relation:
        """The current instance of relation ``name``."""
        try:
            return self._instances[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def version_of(self, name: str) -> int:
        """Mutation counter of relation ``name``.

        Bumped by every :meth:`load`, :meth:`insert`, :meth:`delete`
        and :meth:`add_relation`; never decreases.  Backends use it to
        detect stale copies without comparing row sets.
        """
        if name not in self.schema:
            raise UnknownRelationError(name)
        return self._versions.get(name, 0)

    def _bump(self, name: str) -> None:
        self._versions[name] = self._versions.get(name, 0) + 1

    def load(self, name: str, rows: Iterable[Row]) -> None:
        """Replace the instance of relation ``name`` with ``rows``."""
        schema = self.schema.get(name)
        self._instances[name] = Relation.from_schema(schema, rows)
        self._bump(name)

    def insert(self, name: str, row: Row) -> None:
        """Insert a single row into relation ``name``.

        Inserting a duplicate row is a no-op under set semantics.
        """
        current = self.instance(name)
        schema = self.schema.get(name)
        self._instances[name] = Relation.from_schema(
            schema, list(current.rows) + [tuple(row)]
        )
        self._bump(name)

    def delete(self, name: str, rows: Iterable[Row]) -> int:
        """Delete ``rows`` from relation ``name``; returns rows removed."""
        current = self.instance(name)
        doomed = {tuple(r) for r in rows}
        remaining = [row for row in current.rows if row not in doomed]
        removed = current.cardinality - len(remaining)
        schema = self.schema.get(name)
        self._instances[name] = Relation.from_schema(schema, remaining)
        self._bump(name)
        return removed

    def total_rows(self) -> int:
        """Total row count across all relations."""
        return sum(rel.cardinality for rel in self._instances.values())

    def __contains__(self, name: str) -> bool:
        return name in self.schema

    def __iter__(self) -> Iterator[Tuple[str, Relation]]:
        return iter(self._instances.items())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{rel.cardinality}]" for name, rel in self._instances.items()
        )
        return f"Database({parts})"


def build_database(
    schemas: Iterable[RelationSchema],
    instances: Dict[str, Iterable[Row]],
) -> Database:
    """Construct a database from schemes and a row mapping.

    Raises:
        SchemaError: when ``instances`` mentions an undeclared relation.
    """
    db_schema = DatabaseSchema()
    for schema in schemas:
        db_schema.add(schema)
    database = Database(db_schema)
    for name, rows in instances.items():
        if name not in db_schema:
            raise SchemaError(f"instance given for undeclared relation {name!r}")
        database.load(name, rows)
    return database
