"""Optimized PSJ evaluation for the data side.

Section 4.1: "This simple strategy for implementing conjunctive queries
is not necessarily optimal.  However, ... the optimality is not so
essential for meta-relations, because they are relatively small.  For
the actual relations, where optimality is essential, a different
strategy may be implemented."

This module is that different strategy.  It never materializes the full
product.  Instead it binds occurrences one at a time, applying each
selection conjunct as soon as every column it references is bound
(predicate pushdown), and uses hash lookups for equality join
predicates whose right side binds the occurrence being added.

The result is identical to :func:`repro.algebra.evaluate.evaluate_naive`
(a property the test suite checks exhaustively); only the cost differs.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.algebra.columnar import DEFAULT_CHUNK_SIZE
from repro.algebra.database import Database
from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    PSJQuery,
)
from repro.algebra.relation import Relation, Row, row_getter
from repro.algebra.types import Value


def _step_plan(
    query: PSJQuery, database: Database,
) -> Tuple[List[int], List[int], List[List[AtomicCondition]]]:
    """Shared step setup: offsets, widths, and per-step conditions.

    For each occurrence step, gather the conditions that become fully
    bound once that occurrence is added: a condition joins the step
    binding the last column it references.  One pass over the
    conditions; a condition referencing no bindable column (possible
    only for malformed queries) is dropped, as before.
    """
    schema = database.schema
    offsets = query.offsets(schema)
    widths = [schema.get(o.relation).arity for o in query.occurrences]
    bounds: List[int] = []
    bound_width = 0
    for width in widths:
        bound_width += width
        bounds.append(bound_width)
    step_conditions: List[List[AtomicCondition]] = [[] for _ in widths]
    for condition in query.conditions:
        step = bisect_right(bounds, max(condition.columns(), default=-1))
        if step < len(step_conditions):
            step_conditions[step].append(condition)
    return offsets, widths, step_conditions


def evaluate_optimized(query: PSJQuery, database: Database) -> Relation:
    """Evaluate ``query`` with pushdown and hash joins.

    Occurrences are joined in their given order (join reordering would
    also be sound but makes traces harder to compare); the optimization
    is in *when* predicates run, not in the join order.
    """
    query.validate(database.schema)
    schema = database.schema
    offsets, widths, step_conditions = _step_plan(query, database)

    partials: List[Row] = [()]
    for step, occ in enumerate(query.occurrences):
        relation = database.instance(occ.relation)
        conditions = step_conditions[step]
        offset = offsets[step]

        equi, residual = _split_equijoin(conditions, offset, widths[step])
        if equi and partials and relation.rows:
            partials = _hash_join_step(partials, relation, offset, equi,
                                       residual)
        else:
            partials = _nested_loop_step(partials, relation, conditions)
        if not partials:
            break

    columns = query.product_columns(schema)
    result_rows = map(row_getter(query.output), partials)
    out_columns = tuple(columns[i] for i in query.output)
    return Relation(out_columns, result_rows, validate=False)


def iter_evaluate_optimized(
    query: PSJQuery, database: Database,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> Iterator[Tuple[Row, ...]]:
    """Evaluate ``query``, yielding deduplicated rows in chunks.

    The streaming counterpart of :func:`evaluate_optimized` (its
    oracle — soundlint SL005): the concatenated chunks equal
    ``evaluate_optimized(query, database).rows`` exactly, including
    order (``tests/property/test_chunked_apply.py``).  Partial rows
    flow through the same pushdown/hash-join steps as generators, so
    at most O(chunk) projected rows are buffered — the irreducible
    memory cost is the hash-join build sides (one relation each) and
    the set-semantics dedupe set (one entry per *distinct* output
    row, cheaper than the rows themselves).
    """
    query.validate(database.schema)
    offsets, widths, step_conditions = _step_plan(query, database)
    if chunk_size <= 0:
        chunk_size = 1

    partials: Iterable[Row] = ((),)
    for step, occ in enumerate(query.occurrences):
        relation = database.instance(occ.relation)
        conditions = step_conditions[step]
        offset = offsets[step]
        equi, residual = _split_equijoin(conditions, offset, widths[step])
        if equi and relation.rows:
            partials = _hash_join_iter(partials, relation, offset, equi,
                                       residual)
        else:
            partials = _nested_loop_iter(partials, relation, conditions)

    getter = row_getter(query.output)
    seen = set()
    add = seen.add
    chunk: List[Row] = []
    append = chunk.append
    for partial in partials:
        row = getter(partial)
        if row in seen:
            continue
        add(row)
        append(row)
        if len(chunk) >= chunk_size:
            yield tuple(chunk)
            chunk.clear()
    if chunk:
        yield tuple(chunk)


def _split_equijoin(
    conditions: Sequence[AtomicCondition],
    offset: int,
    width: int,
) -> Tuple[List[AtomicCondition], List[AtomicCondition]]:
    """Partition ``conditions`` into hashable equi-joins and the rest.

    A condition is hashable for this step when it is an equality with
    exactly one side inside the occurrence being added (columns
    ``[offset, offset+width)``) and the other side already bound or
    constant.
    """
    equi: List[AtomicCondition] = []
    residual: List[AtomicCondition] = []
    for condition in conditions:
        if not condition.op.is_equality:
            residual.append(condition)
            continue
        inside = [
            index for index in condition.columns()
            if offset <= index < offset + width
        ]
        if len(inside) == 1:
            equi.append(condition)
        else:
            residual.append(condition)
    return equi, residual


def _probe_key_parts(condition: AtomicCondition, offset: int,
                     width: int) -> Tuple[int, object]:
    """Return (new-row column, bound operand) for a hashable condition."""
    lhs, rhs = condition.lhs, condition.rhs
    if isinstance(lhs, Col) and offset <= lhs.index < offset + width:
        return lhs.index - offset, rhs
    assert isinstance(rhs, Col)
    return rhs.index - offset, lhs


def _hash_join_step(
    partials: List[Row],
    relation: Relation,
    offset: int,
    equi: Sequence[AtomicCondition],
    residual: Sequence[AtomicCondition],
) -> List[Row]:
    """Extend partial rows via a hash join on the equality conditions."""
    key_specs = [_probe_key_parts(c, offset, relation.arity) for c in equi]

    # Build side: index the new relation's rows by their key columns.
    buckets: Dict[Tuple[Value, ...], List[Row]] = {}
    for row in relation.rows:
        key = tuple(row[col] for col, _ in key_specs)
        buckets.setdefault(key, []).append(row)

    out: List[Row] = []
    for partial in partials:
        probe: List[Value] = []
        for _, operand in key_specs:
            if isinstance(operand, Const):
                probe.append(operand.value)
            else:
                probe.append(partial[operand.index])
        matches = buckets.get(tuple(probe), ())
        for row in matches:
            candidate = partial + row
            if all(c.evaluate(candidate) for c in residual):
                out.append(candidate)
    return out


def _nested_loop_step(
    partials: List[Row],
    relation: Relation,
    conditions: Sequence[AtomicCondition],
) -> List[Row]:
    """Extend partial rows by nested-loop product plus filtering."""
    out: List[Row] = []
    for partial in partials:
        for row in relation.rows:
            candidate = partial + row
            if all(c.evaluate(candidate) for c in conditions):
                out.append(candidate)
    return out


def _hash_join_iter(
    partials: Iterable[Row],
    relation: Relation,
    offset: int,
    equi: Sequence[AtomicCondition],
    residual: Sequence[AtomicCondition],
) -> Iterator[Row]:
    """Generator twin of :func:`_hash_join_step`: same rows, same
    order, but partial rows flow through without materializing.  The
    build-side buckets (one relation) are the only retained state."""
    key_specs = [_probe_key_parts(c, offset, relation.arity) for c in equi]
    buckets: Dict[Tuple[Value, ...], List[Row]] = {}
    for row in relation.rows:
        key = tuple(row[col] for col, _ in key_specs)
        buckets.setdefault(key, []).append(row)

    for partial in partials:
        probe: List[Value] = []
        for _, operand in key_specs:
            if isinstance(operand, Const):
                probe.append(operand.value)
            else:
                probe.append(partial[operand.index])
        matches = buckets.get(tuple(probe), ())
        for row in matches:
            candidate = partial + row
            if all(c.evaluate(candidate) for c in residual):
                yield candidate


def _nested_loop_iter(
    partials: Iterable[Row],
    relation: Relation,
    conditions: Sequence[AtomicCondition],
) -> Iterator[Row]:
    """Generator twin of :func:`_nested_loop_step`."""
    rows = relation.rows
    for partial in partials:
        for row in rows:
            candidate = partial + row
            if all(c.evaluate(candidate) for c in conditions):
                yield candidate
