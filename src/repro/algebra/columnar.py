"""Columnar chunk utilities and the optional numpy gate.

The columnar data plane (ROADMAP item 5) views a relation as a tuple
of per-column value sequences instead of a sequence of row tuples:
:meth:`repro.algebra.relation.Relation.column_data` exposes that view,
and the mask kernels in :mod:`repro.core.compiled_mask` evaluate their
checks as per-column passes over chunks of it.  This module holds the
pieces both sides share:

* :func:`iter_chunks` — bound an arbitrary row iterator into fixed-size
  tuples, the unit of work of every chunk-streamed path;
* :func:`columns_of` — transpose a row chunk into column sequences;
* :func:`numpy_or_none` — the lazy, *optional* numpy gate.  numpy is
  never imported at module load and never required: callers that ask
  for the vectorized path (``EngineConfig.columnar_numpy``) silently
  fall back to pure Python when the library is absent, so the
  container needs nothing beyond the stdlib.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.algebra.types import Value

#: A database row (duplicated from ``relation`` to avoid a cycle).
_Row = Tuple[Value, ...]

#: Default rows per chunk for every chunk-streamed path.  Large enough
#: that per-chunk fixed costs (transpose, flag allocation) amortize,
#: small enough that a chunk of wide rows stays comfortably in cache.
DEFAULT_CHUNK_SIZE = 8192

#: Tri-state numpy cache: ``None`` = not probed yet, ``False`` = probed
#: and absent, module = probed and importable.
_numpy_module: Any = None
_numpy_probed: bool = False


def numpy_or_none() -> Optional[Any]:
    """The numpy module when importable, else ``None`` (cached probe)."""
    global _numpy_module, _numpy_probed
    if not _numpy_probed:
        try:
            import numpy
        except ImportError:  # pragma: no cover - depends on image
            _numpy_module = None
        else:
            _numpy_module = numpy
        _numpy_probed = True
    return _numpy_module


def have_numpy() -> bool:
    """Whether the optional numpy path is available at all."""
    return numpy_or_none() is not None


def iter_chunks(rows: Iterable[_Row],
                chunk_size: int = DEFAULT_CHUNK_SIZE
                ) -> Iterator[Tuple[_Row, ...]]:
    """Regroup ``rows`` into tuples of at most ``chunk_size`` rows.

    Bounded memory: only one chunk is buffered at a time.  A
    non-positive ``chunk_size`` degrades to 1 rather than failing —
    chunking granularity is an operational knob, never a correctness
    one.
    """
    if chunk_size <= 0:
        chunk_size = 1
    buffer: List[_Row] = []
    append = buffer.append
    for row in rows:
        append(row)
        if len(buffer) >= chunk_size:
            yield tuple(buffer)
            buffer.clear()
    if buffer:
        yield tuple(buffer)


def columns_of(rows: Sequence[_Row],
               arity: int) -> Tuple[Tuple[Value, ...], ...]:
    """Transpose a row chunk into per-column value tuples.

    The empty chunk still yields ``arity`` (empty) columns, so callers
    never have to special-case it.
    """
    if not rows:
        return ((),) * arity
    return tuple(zip(*rows))
