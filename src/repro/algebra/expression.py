"""Product–selection–projection (PSJ) plans.

Section 4.1 fixes the evaluation strategy the meta-algebra requires:
"S' is transformed to a sequence of products, followed by selections,
and ending with projections".  :class:`PSJQuery` is exactly that normal
form: an ordered list of relation *occurrences*, a conjunction of
atomic selection conditions over the positional columns of their
product, and a final projection.

The same plan object drives three consumers:

* the naive data evaluator (:mod:`repro.algebra.evaluate`), mirroring
  the paper's operation sequences literally;
* the optimized data evaluator (:mod:`repro.algebra.optimize`) — the
  paper notes that "for the actual relations, where optimality is
  essential, a different strategy may be implemented";
* the meta-algebra (:mod:`repro.metaalgebra.plan`), which replaces each
  occurrence scan with the corresponding meta-relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple, Union

from repro.algebra.relation import Column, Row
from repro.algebra.schema import DatabaseSchema
from repro.algebra.types import Value
from repro.errors import EvaluationError
from repro.predicates.comparators import Comparator


@dataclass(frozen=True)
class Col:
    """A positional column reference within a product row."""

    index: int

    def __str__(self) -> str:
        return f"#{self.index}"


@dataclass(frozen=True)
class Const:
    """A constant operand."""

    value: Value

    def __str__(self) -> str:
        return repr(self.value)


Operand = Union[Col, Const]


@dataclass(frozen=True)
class AtomicCondition:
    """One conjunct of a selection: ``lhs op rhs``.

    At least one operand must be a :class:`Col`; the normalizer orients
    conditions so a lone column reference sits on the left.
    """

    lhs: Operand
    op: Comparator
    rhs: Operand

    def __post_init__(self) -> None:
        if not isinstance(self.lhs, Col) and not isinstance(self.rhs, Col):
            raise EvaluationError("condition must reference a column")

    def evaluate(self, row: Row) -> bool:
        """Apply the condition to a product row."""
        left = row[self.lhs.index] if isinstance(self.lhs, Col) else self.lhs.value
        right = row[self.rhs.index] if isinstance(self.rhs, Col) else self.rhs.value
        return self.op.evaluate(left, right)

    def columns(self) -> Tuple[int, ...]:
        """Positions of all column operands."""
        out: List[int] = []
        if isinstance(self.lhs, Col):
            out.append(self.lhs.index)
        if isinstance(self.rhs, Col):
            out.append(self.rhs.index)
        return tuple(out)

    @property
    def is_column_pair(self) -> bool:
        """True for column-to-column conditions (join predicates)."""
        return isinstance(self.lhs, Col) and isinstance(self.rhs, Col)

    def render(self, labels: Sequence[str]) -> str:
        """Human-readable form using column display labels."""

        def side(operand: Operand) -> str:
            if isinstance(operand, Col):
                return labels[operand.index]
            return _render_constant(operand.value)

        return f"{side(self.lhs)} {self.op} {side(self.rhs)}"


def _render_constant(value: Value) -> str:
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 10_000 else str(value)
    return str(value)


@dataclass(frozen=True)
class Occurrence:
    """One appearance of a base relation in a query or view.

    The paper's surface syntax writes ``EMPLOYEE:1``/``EMPLOYEE:2`` when
    a relation participates more than once; ``occurrence`` is that
    1-based index (1 for the common single-appearance case).
    """

    relation: str
    occurrence: int = 1

    def __str__(self) -> str:
        if self.occurrence == 1:
            return self.relation
        return f"{self.relation}:{self.occurrence}"


@dataclass(frozen=True)
class PSJQuery:
    """A conjunctive query in products/selections/projections order.

    Attributes:
        occurrences: the relation occurrences, in product order.
        conditions: selection conjuncts over the positional columns of
            the product, applied in order (the paper's Examples apply
            them as a single conjunctive sigma; order is irrelevant to
            the result but preserved for faithful traces).
        output: positions retained by the final projection, in output
            order.
    """

    occurrences: Tuple[Occurrence, ...]
    conditions: Tuple[AtomicCondition, ...]
    output: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.occurrences:
            raise EvaluationError("a query must reference at least one relation")
        if not self.output:
            raise EvaluationError("a query must project at least one column")

    # ------------------------------------------------------------------
    # structural helpers
    # ------------------------------------------------------------------

    def relation_names(self) -> FrozenSet[str]:
        """The set of base relations referenced."""
        return frozenset(o.relation for o in self.occurrences)

    def offsets(self, schema: DatabaseSchema) -> Tuple[int, ...]:
        """Starting column offset of each occurrence in the product."""
        offsets: List[int] = []
        position = 0
        for occ in self.occurrences:
            offsets.append(position)
            position += schema.get(occ.relation).arity
        return tuple(offsets)

    def total_width(self, schema: DatabaseSchema) -> int:
        """Arity of the full product."""
        return sum(schema.get(o.relation).arity for o in self.occurrences)

    def occurrence_of_column(self, schema: DatabaseSchema,
                             index: int) -> int:
        """Index (into ``occurrences``) owning product column ``index``."""
        position = 0
        for i, occ in enumerate(self.occurrences):
            width = schema.get(occ.relation).arity
            if position <= index < position + width:
                return i
            position += width
        raise EvaluationError(f"column {index} out of range")

    def product_columns(self, schema: DatabaseSchema) -> Tuple[Column, ...]:
        """Column descriptors for the full product, with paper-style labels.

        When a relation occurs more than once, its columns are labelled
        ``ATTR:k`` (the paper's Example 3 convention); otherwise plain
        ``ATTR``.
        """
        multi = {
            name
            for name in self.relation_names()
            if sum(1 for o in self.occurrences if o.relation == name) > 1
        }
        columns: List[Column] = []
        for occ in self.occurrences:
            rel_schema = schema.get(occ.relation)
            for attribute in rel_schema.attributes:
                label = attribute.name
                if occ.relation in multi:
                    label = f"{attribute.name}:{occ.occurrence}"
                columns.append(
                    Column(label, attribute.domain,
                           (occ.relation, attribute.name))
                )
        return tuple(columns)

    def output_columns(self, schema: DatabaseSchema) -> Tuple[Column, ...]:
        """Column descriptors of the projected result."""
        product = self.product_columns(schema)
        return tuple(product[i] for i in self.output)

    def validate(self, schema: DatabaseSchema) -> None:
        """Check positional and type consistency against ``schema``.

        Raises:
            EvaluationError: for out-of-range column references.
            TypeMismatchError: for comparisons across incompatible
                domains (raised by the domain check).
        """
        width = self.total_width(schema)
        product = self.product_columns(schema)
        for condition in self.conditions:
            for index in condition.columns():
                if not 0 <= index < width:
                    raise EvaluationError(
                        f"condition references column {index}, width {width}"
                    )
            _check_condition_domains(condition, product)
        for index in self.output:
            if not 0 <= index < width:
                raise EvaluationError(
                    f"projection references column {index}, width {width}"
                )

    def describe(self, schema: DatabaseSchema) -> str:
        """A compact, human-readable rendering of the plan."""
        labels = [c.label for c in self.product_columns(schema)]
        parts = [" x ".join(str(o) for o in self.occurrences)]
        if self.conditions:
            parts.append(
                "sigma[" + " and ".join(c.render(labels) for c in self.conditions) + "]"
            )
        parts.append("pi[" + ", ".join(labels[i] for i in self.output) + "]")
        return " -> ".join(parts)


def _check_condition_domains(condition: AtomicCondition,
                             product: Sequence[Column]) -> None:
    from repro.algebra.types import Domain, domain_of_value
    from repro.errors import TypeMismatchError

    def domain_of(operand: Operand) -> Domain:
        if isinstance(operand, Col):
            return product[operand.index].domain
        return domain_of_value(operand.value)

    left, right = domain_of(condition.lhs), domain_of(condition.rhs)
    if not left.comparable_with(right):
        raise TypeMismatchError(
            f"cannot compare {left} with {right} in condition"
        )


def occurrence_counts(occurrences: Sequence[Occurrence]) -> Dict[str, int]:
    """How many times each relation appears among ``occurrences``."""
    counts: Dict[str, int] = {}
    for occ in occurrences:
        counts[occ.relation] = counts.get(occ.relation, 0) + 1
    return counts
