"""In-memory relations with set semantics.

A :class:`Relation` pairs a sequence of column descriptors with a set
of rows.  Rows are plain tuples of values; columns carry a display
label and a domain.  The algebra operators of the paper — product,
selection, projection — are provided as methods; they are *positional*,
matching the way the meta-algebra of Section 4 manipulates meta-tuples.

Relations are immutable: every operator returns a new relation.  Row
order is preserved deterministically (first-seen order) so experiment
output is stable, while duplicate rows are removed, giving the set
semantics the relational model requires.

The row-tuple API is primary; :meth:`Relation.column_data` exposes the
same rows as a lazily cached *columnar* view (one value tuple per
column) for the vectorized mask kernels of
:mod:`repro.core.compiled_mask`, and :meth:`Relation.from_columns`
builds a relation back from such a view.  Immutability makes the two
views permanently consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import itemgetter
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.algebra.schema import RelationSchema
from repro.algebra.types import Domain, Value
from repro.errors import EvaluationError, TypeMismatchError

#: A database row.
Row = Tuple[Value, ...]


@dataclass(frozen=True)
class Column:
    """A column of a derived relation: a display label plus a domain.

    ``source`` records the base attribute the column descends from
    (``("EMPLOYEE", "NAME")``), which the masking layer uses to explain
    delivered portions in terms of the original scheme.
    """

    label: str
    domain: Domain
    source: Tuple[str, str] = ("", "")

    def renamed(self, label: str) -> "Column":
        """Return a copy of this column with a new display label."""
        return Column(label, self.domain, self.source)

    def __str__(self) -> str:
        return self.label


class Relation:
    """An immutable relation instance with set semantics."""

    __slots__ = ("columns", "rows", "_row_set", "_column_cache",
                 "_label_index")

    def __init__(self, columns: Sequence[Column], rows: Iterable[Row],
                 validate: bool = True) -> None:
        self.columns: Tuple[Column, ...] = tuple(columns)
        deduped: List[Row] = []
        seen = set()
        for row in rows:
            # Operator pipelines overwhelmingly feed tuples already;
            # re-allocating each one dominated construction at 10^6
            # rows, so only genuinely foreign sequences are converted.
            if type(row) is not tuple:
                row = tuple(row)
            if validate:
                self._validate_row(row)
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        self.rows: Tuple[Row, ...] = tuple(deduped)
        self._row_set = seen
        self._column_cache: Optional[Tuple[Tuple[Value, ...], ...]] = \
            None
        self._label_index: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_schema(cls, schema: RelationSchema,
                    rows: Iterable[Row]) -> "Relation":
        """Build a base relation instance for ``schema``."""
        columns = tuple(
            Column(a.name, a.domain, (schema.name, a.name))
            for a in schema.attributes
        )
        return cls(columns, rows)

    @classmethod
    def from_columns(
        cls,
        columns: Sequence[Column],
        column_data: Sequence[Sequence[Value]],
        validate: bool = False,
    ) -> "Relation":
        """Build a relation from per-column value sequences.

        The inverse of :meth:`column_data`: ``column_data[c][i]`` is
        the value of column ``c`` in row ``i``.  All columns must have
        equal length; set semantics (dedupe, first-seen order) apply
        exactly as in row-wise construction.  A zero-column relation
        cannot recover its row count from columns and comes back empty.
        """
        if len(column_data) != len(columns):
            raise TypeMismatchError(
                f"{len(column_data)} data columns != "
                f"{len(columns)} column descriptors"
            )
        lengths = {len(col) for col in column_data}
        if len(lengths) > 1:
            raise TypeMismatchError(
                f"ragged column data: lengths {sorted(lengths)}"
            )
        return cls(columns, zip(*column_data), validate=validate)

    def _validate_row(self, row: Row) -> None:
        if len(row) != len(self.columns):
            raise TypeMismatchError(
                f"row arity {len(row)} != relation arity {len(self.columns)}"
            )
        for value, column in zip(row, self.columns):
            if not column.domain.contains(value):
                raise TypeMismatchError(
                    f"value {value!r} out of domain {column.domain} "
                    f"for column {column.label!r}"
                )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    @property
    def cardinality(self) -> int:
        """Number of (distinct) rows."""
        return len(self.rows)

    def labels(self) -> Tuple[str, ...]:
        """Column display labels."""
        return tuple(c.label for c in self.columns)

    def index_of(self, label: str) -> int:
        """Position of the (first) column labelled ``label``."""
        index = self._label_index
        if index is None:
            index = {}
            for i, column in enumerate(self.columns):
                index.setdefault(column.label, i)
            self._label_index = index
        try:
            return index[label]
        except KeyError:
            raise EvaluationError(
                f"no column labelled {label!r}"
            ) from None

    def column_data(self) -> Tuple[Tuple[Value, ...], ...]:
        """The columnar view: one value tuple per column, row order.

        Lazily transposed from :attr:`rows` on first call and cached —
        immutability keeps the two views consistent forever.  This is
        the representation the vectorized mask kernels
        (:mod:`repro.core.compiled_mask`) scan.
        """
        cached = self._column_cache
        if cached is None:
            if self.rows:
                cached = tuple(zip(*self.rows))
            else:
                cached = ((),) * self.arity
            self._column_cache = cached
        return cached

    def column_values(self, index: int) -> Tuple[Value, ...]:
        """All values in column ``index``, in row order."""
        if self._column_cache is not None:
            return self._column_cache[index]
        return tuple(row[index] for row in self.rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._row_set

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        """Set equality: same columns (labels+domains) and same row set."""
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            tuple((c.label, c.domain) for c in self.columns)
            == tuple((c.label, c.domain) for c in other.columns)
            and self._row_set == other._row_set
        )

    def __hash__(self) -> int:  # pragma: no cover - relations rarely hashed
        return hash((self.labels(), frozenset(self._row_set)))

    def same_rows(self, other: "Relation") -> bool:
        """Row-set equality regardless of column labels."""
        return self._row_set == other._row_set

    # ------------------------------------------------------------------
    # the three operators of the paper's conjunctive algebra
    # ------------------------------------------------------------------

    def product(self, other: "Relation") -> "Relation":
        """Cartesian product (Definition 1's data-side counterpart)."""
        columns = self.columns + other.columns
        rows = [left + right for left in self.rows for right in other.rows]
        return Relation(columns, rows, validate=False)

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Selection by an arbitrary row predicate."""
        return Relation(
            self.columns,
            (row for row in self.rows if predicate(row)),
            validate=False,
        )

    def project(self, indices: Sequence[int]) -> "Relation":
        """Projection onto the columns at ``indices`` (in that order)."""
        for index in indices:
            if not 0 <= index < self.arity:
                raise EvaluationError(f"projection index {index} out of range")
        columns = tuple(self.columns[i] for i in indices)
        return Relation(columns, map(row_getter(indices), self.rows),
                        validate=False)

    # ------------------------------------------------------------------
    # supplementary operators (used by baselines and the oracle)
    # ------------------------------------------------------------------

    def rename(self, labels: Sequence[str]) -> "Relation":
        """Return this relation with new column labels."""
        if len(labels) != self.arity:
            raise EvaluationError("rename arity mismatch")
        columns = tuple(c.renamed(l) for c, l in zip(self.columns, labels))
        return Relation(columns, self.rows, validate=False)

    def union(self, other: "Relation") -> "Relation":
        """Set union; arities must agree."""
        if self.arity != other.arity:
            raise EvaluationError("union arity mismatch")
        return Relation(self.columns, list(self.rows) + list(other.rows),
                        validate=False)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; arities must agree."""
        if self.arity != other.arity:
            raise EvaluationError("difference arity mismatch")
        return Relation(
            self.columns,
            (row for row in self.rows if row not in other._row_set),
            validate=False,
        )

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; arities must agree."""
        if self.arity != other.arity:
            raise EvaluationError("intersection arity mismatch")
        return Relation(
            self.columns,
            (row for row in self.rows if row in other._row_set),
            validate=False,
        )

    def __repr__(self) -> str:
        return (
            f"Relation({', '.join(self.labels())}; "
            f"{self.cardinality} rows)"
        )


def row_getter(indices: Sequence[int]) -> Callable[[Row], Row]:
    """A tuple-returning projection function for ``indices``.

    ``operator.itemgetter`` runs the index walk in C — measurably
    faster than a per-row generator expression — but returns a bare
    value for a single index and cannot express the empty projection;
    this helper papers over both edges.  Shared by
    :meth:`Relation.project` and the evaluators.
    """
    if not indices:
        return lambda row: ()
    if len(indices) == 1:
        index = indices[0]
        return lambda row: (row[index],)
    getter: Callable[[Row], Row] = itemgetter(*indices)
    return getter


def empty_like(relation: Relation) -> Relation:
    """An empty relation with the same columns as ``relation``."""
    return Relation(relation.columns, (), validate=False)
