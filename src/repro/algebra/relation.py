"""In-memory relations with set semantics.

A :class:`Relation` pairs a sequence of column descriptors with a set
of rows.  Rows are plain tuples of values; columns carry a display
label and a domain.  The algebra operators of the paper — product,
selection, projection — are provided as methods; they are *positional*,
matching the way the meta-algebra of Section 4 manipulates meta-tuples.

Relations are immutable: every operator returns a new relation.  Row
order is preserved deterministically (first-seen order) so experiment
output is stable, while duplicate rows are removed, giving the set
semantics the relational model requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Sequence, Tuple

from repro.algebra.schema import RelationSchema
from repro.algebra.types import Domain, Value
from repro.errors import EvaluationError, TypeMismatchError

#: A database row.
Row = Tuple[Value, ...]


@dataclass(frozen=True)
class Column:
    """A column of a derived relation: a display label plus a domain.

    ``source`` records the base attribute the column descends from
    (``("EMPLOYEE", "NAME")``), which the masking layer uses to explain
    delivered portions in terms of the original scheme.
    """

    label: str
    domain: Domain
    source: Tuple[str, str] = ("", "")

    def renamed(self, label: str) -> "Column":
        """Return a copy of this column with a new display label."""
        return Column(label, self.domain, self.source)

    def __str__(self) -> str:
        return self.label


class Relation:
    """An immutable relation instance with set semantics."""

    __slots__ = ("columns", "rows", "_row_set")

    def __init__(self, columns: Sequence[Column], rows: Iterable[Row],
                 validate: bool = True) -> None:
        self.columns: Tuple[Column, ...] = tuple(columns)
        deduped: List[Row] = []
        seen = set()
        for row in rows:
            row = tuple(row)
            if validate:
                self._validate_row(row)
            if row not in seen:
                seen.add(row)
                deduped.append(row)
        self.rows: Tuple[Row, ...] = tuple(deduped)
        self._row_set = seen

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_schema(cls, schema: RelationSchema,
                    rows: Iterable[Row]) -> "Relation":
        """Build a base relation instance for ``schema``."""
        columns = tuple(
            Column(a.name, a.domain, (schema.name, a.name))
            for a in schema.attributes
        )
        return cls(columns, rows)

    def _validate_row(self, row: Row) -> None:
        if len(row) != len(self.columns):
            raise TypeMismatchError(
                f"row arity {len(row)} != relation arity {len(self.columns)}"
            )
        for value, column in zip(row, self.columns):
            if not column.domain.contains(value):
                raise TypeMismatchError(
                    f"value {value!r} out of domain {column.domain} "
                    f"for column {column.label!r}"
                )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    @property
    def cardinality(self) -> int:
        """Number of (distinct) rows."""
        return len(self.rows)

    def labels(self) -> Tuple[str, ...]:
        """Column display labels."""
        return tuple(c.label for c in self.columns)

    def index_of(self, label: str) -> int:
        """Position of the column labelled ``label``."""
        for i, column in enumerate(self.columns):
            if column.label == label:
                return i
        raise EvaluationError(f"no column labelled {label!r}")

    def column_values(self, index: int) -> Tuple[Value, ...]:
        """All values in column ``index``, in row order."""
        return tuple(row[index] for row in self.rows)

    def __contains__(self, row: Row) -> bool:
        return tuple(row) in self._row_set

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        """Set equality: same columns (labels+domains) and same row set."""
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            tuple((c.label, c.domain) for c in self.columns)
            == tuple((c.label, c.domain) for c in other.columns)
            and self._row_set == other._row_set
        )

    def __hash__(self) -> int:  # pragma: no cover - relations rarely hashed
        return hash((self.labels(), frozenset(self._row_set)))

    def same_rows(self, other: "Relation") -> bool:
        """Row-set equality regardless of column labels."""
        return self._row_set == other._row_set

    # ------------------------------------------------------------------
    # the three operators of the paper's conjunctive algebra
    # ------------------------------------------------------------------

    def product(self, other: "Relation") -> "Relation":
        """Cartesian product (Definition 1's data-side counterpart)."""
        columns = self.columns + other.columns
        rows = [left + right for left in self.rows for right in other.rows]
        return Relation(columns, rows, validate=False)

    def select(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Selection by an arbitrary row predicate."""
        return Relation(
            self.columns,
            (row for row in self.rows if predicate(row)),
            validate=False,
        )

    def project(self, indices: Sequence[int]) -> "Relation":
        """Projection onto the columns at ``indices`` (in that order)."""
        for index in indices:
            if not 0 <= index < self.arity:
                raise EvaluationError(f"projection index {index} out of range")
        columns = tuple(self.columns[i] for i in indices)
        rows = (tuple(row[i] for i in indices) for row in self.rows)
        return Relation(columns, rows, validate=False)

    # ------------------------------------------------------------------
    # supplementary operators (used by baselines and the oracle)
    # ------------------------------------------------------------------

    def rename(self, labels: Sequence[str]) -> "Relation":
        """Return this relation with new column labels."""
        if len(labels) != self.arity:
            raise EvaluationError("rename arity mismatch")
        columns = tuple(c.renamed(l) for c, l in zip(self.columns, labels))
        return Relation(columns, self.rows, validate=False)

    def union(self, other: "Relation") -> "Relation":
        """Set union; arities must agree."""
        if self.arity != other.arity:
            raise EvaluationError("union arity mismatch")
        return Relation(self.columns, list(self.rows) + list(other.rows),
                        validate=False)

    def difference(self, other: "Relation") -> "Relation":
        """Set difference; arities must agree."""
        if self.arity != other.arity:
            raise EvaluationError("difference arity mismatch")
        return Relation(
            self.columns,
            (row for row in self.rows if row not in other._row_set),
            validate=False,
        )

    def intersection(self, other: "Relation") -> "Relation":
        """Set intersection; arities must agree."""
        if self.arity != other.arity:
            raise EvaluationError("intersection arity mismatch")
        return Relation(
            self.columns,
            (row for row in self.rows if row in other._row_set),
            validate=False,
        )

    def __repr__(self) -> str:
        return (
            f"Relation({', '.join(self.labels())}; "
            f"{self.cardinality} rows)"
        )


def empty_like(relation: Relation) -> Relation:
    """An empty relation with the same columns as ``relation``."""
    return Relation(relation.columns, (), validate=False)
