"""Naive PSJ evaluation: products first, then selections, then projection.

This mirrors the operation sequences printed in the paper's Section 5
examples, step by step, and is the reference implementation the
optimizer (:mod:`repro.algebra.optimize`) is tested against.  It also
exposes the intermediate relations so the experiment harness can print
the same tables the paper prints.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Tuple

from repro.algebra.database import Database
from repro.algebra.expression import PSJQuery
from repro.algebra.relation import Relation


@dataclass
class EvaluationTrace:
    """Intermediate results of a naive PSJ evaluation.

    Attributes:
        after_product: the full product of the referenced occurrences.
        after_selections: the relation after each selection conjunct,
            in application order (one entry per conjunct).
        result: the final projected answer.
    """

    after_product: Relation
    after_selections: List[Relation]
    result: Relation


def evaluate_naive(query: PSJQuery, database: Database) -> Relation:
    """Evaluate ``query`` with the products/selections/projection order."""
    return trace_naive(query, database).result


def trace_naive(query: PSJQuery, database: Database) -> EvaluationTrace:
    """Evaluate ``query`` naively, keeping every intermediate relation."""
    query.validate(database.schema)
    operands: Tuple[Relation, ...] = tuple(
        database.instance(occ.relation) for occ in query.occurrences
    )
    # Build the product directly under the paper's display labels
    # (ATTR or ATTR:k).  A pairwise reduce would materialize one
    # intermediate Relation per operand and then a final relabeling
    # copy re-walking the whole row set — on large products that is a
    # full extra dedupe pass over every row for the wrapper alone.
    combos = itertools.product(*(operand.rows for operand in operands))
    product = Relation(
        query.product_columns(database.schema),
        (tuple(itertools.chain.from_iterable(combo)) for combo in combos),
        validate=False,
    )

    after_selections: List[Relation] = []
    current = product
    for condition in query.conditions:
        current = current.select(condition.evaluate)
        after_selections.append(current)

    # Relation.project runs the per-row index walk through a compiled
    # row_getter (operator.itemgetter), so even the naive pipeline's
    # final projection avoids interpreting the index list per row.
    result = current.project(query.output)
    return EvaluationTrace(product, after_selections, result)
