"""S1 — the relational substrate.

Typed domains, relation/database schemes with keys, immutable relation
instances with the conjunctive-algebra operators (product, selection,
projection), PSJ query plans, and two evaluators: a naive one mirroring
the paper's products-then-selections-then-projections order, and an
optimized one with predicate pushdown and hash joins for the data side.
"""

from repro.algebra.database import Database, build_database
from repro.algebra.evaluate import EvaluationTrace, evaluate_naive, trace_naive
from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    Occurrence,
    PSJQuery,
)
from repro.algebra.optimize import evaluate_optimized
from repro.algebra.relation import Column, Relation, Row, empty_like
from repro.algebra.schema import (
    Attribute,
    DatabaseSchema,
    RelationSchema,
    make_schema,
)
from repro.algebra.types import (
    INTEGER,
    REAL,
    STRING,
    Domain,
    Value,
    domain_named,
    domain_of_value,
)

__all__ = [
    "Attribute",
    "AtomicCondition",
    "Col",
    "Column",
    "Const",
    "Database",
    "DatabaseSchema",
    "Domain",
    "EvaluationTrace",
    "INTEGER",
    "Occurrence",
    "PSJQuery",
    "REAL",
    "Relation",
    "RelationSchema",
    "Row",
    "STRING",
    "Value",
    "build_database",
    "domain_named",
    "domain_of_value",
    "empty_like",
    "evaluate_naive",
    "evaluate_optimized",
    "make_schema",
    "trace_naive",
]
