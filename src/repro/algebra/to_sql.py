"""Compiling PSJ plans — and mask predicates — into SQL.

The paper fixes *what* to evaluate (a product–selection–projection
plan and the mask A' derived alongside it) but not *where*.  The
pluggable execution backends (:mod:`repro.backends`) push both down
into an embedded SQL engine; this module is the shared compiler.

Two translations are provided:

* :func:`plan_to_sql` — a :class:`~repro.algebra.expression.PSJQuery`
  becomes one ``SELECT DISTINCT`` over the cross join of its
  occurrences, with every atomic condition as a ``WHERE`` conjunct.
  ``DISTINCT`` matches :class:`~repro.algebra.relation.Relation`'s set
  semantics.
* :func:`masked_plan_to_sql` — wraps the plan SELECT in an outer query
  that applies a :class:`MaskPredicateView` (the SQL-extractable form
  of a mask, built by
  :func:`repro.core.compiled_mask.sql_predicate_view`): each output
  column becomes ``CASE WHEN <visible> THEN column END``, so masking
  happens *inside* the query engine and fully masked cells come back
  as SQL ``NULL`` (the stored domains never produce NULL, so the
  backend can translate NULL to the ``MASKED`` sentinel unambiguously).

The emitted SQL sticks to a portable SQL-92 subset — quoted
identifiers, inline escaped literals, ``CASE``, ``<>`` — shared by the
sqlite3 and DuckDB drivers.  Tables are named after relations; the
columns of a relation of arity n are ``c0 .. c{n-1}``, and the plan's
output columns are aliased ``a0 .. a{k-1}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.algebra.expression import Col, Operand, PSJQuery
from repro.algebra.schema import DatabaseSchema
from repro.algebra.types import Value
from repro.errors import BackendError
from repro.predicates.comparators import Comparator
from repro.predicates.intervals import Interval

#: Comparator → SQL spelling (NE is ``<>`` for dialect portability).
_COMPARATOR_SQL = {
    Comparator.LT: "<",
    Comparator.LE: "<=",
    Comparator.GT: ">",
    Comparator.GE: ">=",
    Comparator.EQ: "=",
    Comparator.NE: "<>",
}

#: Dialect-portable boolean literals (DuckDB has TRUE/FALSE, older
#: SQLite does not; ``(1=1)``/``(1=0)`` work everywhere).
SQL_TRUE = "(1=1)"
SQL_FALSE = "(1=0)"


def quote_identifier(name: str) -> str:
    """Double-quote ``name`` as a SQL identifier."""
    return '"' + name.replace('"', '""') + '"'


def table_name(relation: str) -> str:
    """The SQL table holding relation ``relation``."""
    return quote_identifier(relation)


def column_name(index: int) -> str:
    """The SQL column holding attribute position ``index``."""
    return f"c{index}"


def output_name(index: int) -> str:
    """The alias of the plan's ``index``-th output column."""
    return f"a{index}"


def sql_literal(value: Value) -> str:
    """Render a database value as an inline SQL literal."""
    if isinstance(value, bool):  # bool subclasses int; domains forbid it
        raise BackendError(f"boolean value {value!r} has no SQL literal")
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    raise BackendError(f"value {value!r} has no SQL literal")


def comparator_sql(op: Comparator) -> str:
    """The SQL spelling of comparator ``op``."""
    return _COMPARATOR_SQL[op]


# ----------------------------------------------------------------------
# plan compilation
# ----------------------------------------------------------------------


def _product_refs(plan: PSJQuery, schema: DatabaseSchema) -> Tuple[str, ...]:
    """SQL expression for each positional column of the plan's product."""
    refs: List[str] = []
    for index, occ in enumerate(plan.occurrences):
        arity = schema.get(occ.relation).arity
        refs.extend(
            f"t{index}.{column_name(local)}" for local in range(arity)
        )
    return tuple(refs)


def _operand_sql(operand: Operand, refs: Tuple[str, ...]) -> str:
    if isinstance(operand, Col):
        return refs[operand.index]
    return sql_literal(operand.value)


def plan_to_sql(plan: PSJQuery, schema: DatabaseSchema) -> str:
    """Compile ``plan`` into a single ``SELECT DISTINCT`` statement.

    Self-joins work because each occurrence gets its own table alias
    ``t0, t1, ...`` — the positional product columns of the plan map
    one-to-one onto ``t{occurrence}.c{local}`` references, so the
    ``ATTR:k`` relabelling of the Python evaluator needs no SQL
    counterpart (positions, not labels, carry the semantics).
    """
    refs = _product_refs(plan, schema)
    select = ", ".join(
        f"{refs[position]} AS {output_name(k)}"
        for k, position in enumerate(plan.output)
    )
    tables = ", ".join(
        f"{table_name(occ.relation)} AS t{index}"
        for index, occ in enumerate(plan.occurrences)
    )
    sql = f"SELECT DISTINCT {select} FROM {tables}"
    if plan.conditions:
        conjuncts = " AND ".join(
            f"{_operand_sql(c.lhs, refs)} {comparator_sql(c.op)} "
            f"{_operand_sql(c.rhs, refs)}"
            for c in plan.conditions
        )
        sql += f" WHERE {conjuncts}"
    return sql


# ----------------------------------------------------------------------
# mask predicates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MaskPredicateRow:
    """One mask row in SQL-evaluable form.

    All members reference *output column positions* of the plan the
    mask applies to.  The row admits an answer tuple when every
    constant check, equality group, interval check, and relation check
    holds; its ``star_set`` columns are then visible for that tuple.

    Attributes:
        star_set: output positions this row delivers when it matches.
        const_checks: ``(position, value)`` equality checks from
            constant cells.
        eq_groups: positions that must all hold one value (repeated
            variables).
        interval_checks: ``(position, interval)`` — the value at
            ``position`` must lie in ``interval`` (already carved out
            of the row's constraint store).
        relation_checks: ``(left, op, right)`` comparisons between two
            bound positions (variable-to-variable constraints whose
            variables all appear in the row's cells).
    """

    star_set: FrozenSet[int]
    const_checks: Tuple[Tuple[int, Value], ...]
    eq_groups: Tuple[Tuple[int, ...], ...]
    interval_checks: Tuple[Tuple[int, Interval], ...]
    relation_checks: Tuple[Tuple[int, Comparator, int], ...]

    @property
    def is_unconditional(self) -> bool:
        """True when the row matches every answer tuple."""
        return not (self.const_checks or self.eq_groups
                    or self.interval_checks or self.relation_checks)


@dataclass(frozen=True)
class MaskPredicateView:
    """A whole mask as SQL-evaluable predicates.

    Produced by :func:`repro.core.compiled_mask.sql_predicate_view`
    when (and only when) every row's semantics can be expressed as
    direct positional checks — differentially identical to the
    interpreted :meth:`repro.core.mask.Mask.visible_positions`.

    Attributes:
        ncols: arity of the masked answer.
        always_visible: output positions delivered for every tuple
            (the union of unconditional rows' stars).
        rows: the conditional rows.
    """

    ncols: int
    always_visible: FrozenSet[int]
    rows: Tuple[MaskPredicateRow, ...]

    @property
    def covers_all(self) -> bool:
        """Every column of every tuple is visible."""
        return self.ncols > 0 and len(self.always_visible) == self.ncols


def _interval_sql(ref: str, interval: Interval) -> List[str]:
    """Conjuncts asserting ``ref`` lies in ``interval``."""
    norm = interval.normalized()
    conjuncts: List[str] = []
    if norm.lo is not None:
        op = ">" if norm.lo_strict else ">="
        conjuncts.append(f"{ref} {op} {sql_literal(norm.lo)}")
    if norm.hi is not None:
        op = "<" if norm.hi_strict else "<="
        conjuncts.append(f"{ref} {op} {sql_literal(norm.hi)}")
    for value in sorted(norm.excluded, key=repr):
        conjuncts.append(f"{ref} <> {sql_literal(value)}")
    return conjuncts


def row_predicate_sql(row: MaskPredicateRow,
                      refs: Tuple[str, ...]) -> str:
    """The SQL condition under which ``row`` matches a tuple."""
    conjuncts: List[str] = []
    for position, value in row.const_checks:
        conjuncts.append(f"{refs[position]} = {sql_literal(value)}")
    for group in row.eq_groups:
        first = refs[group[0]]
        conjuncts.extend(
            f"{first} = {refs[position]}" for position in group[1:]
        )
    for position, interval in row.interval_checks:
        conjuncts.extend(_interval_sql(refs[position], interval))
    for left, op, right in row.relation_checks:
        conjuncts.append(
            f"{refs[left]} {comparator_sql(op)} {refs[right]}"
        )
    if not conjuncts:
        return SQL_TRUE
    return "(" + " AND ".join(conjuncts) + ")"


def visibility_sql(view: MaskPredicateView,
                   refs: Tuple[str, ...]) -> Tuple[str, ...]:
    """Per-column SQL conditions: is output column ``j`` visible?

    Column ``j`` is visible for a tuple iff ``j`` is always visible or
    some row starring ``j`` matches the tuple — the union semantics of
    ``Mask.visible_positions``, as a disjunction.
    """
    conditions: List[str] = []
    for j in range(view.ncols):
        if j in view.always_visible:
            conditions.append(SQL_TRUE)
            continue
        matches = [
            row_predicate_sql(row, refs)
            for row in view.rows if j in row.star_set
        ]
        if not matches:
            conditions.append(SQL_FALSE)
        elif len(matches) == 1:
            conditions.append(matches[0])
        else:
            conditions.append("(" + " OR ".join(matches) + ")")
    return tuple(conditions)


def masked_plan_to_sql(plan: PSJQuery, schema: DatabaseSchema,
                       view: MaskPredicateView,
                       drop_fully_masked: bool = False) -> str:
    """Compile ``plan`` masked by ``view`` into one SQL statement.

    The plan SELECT becomes a subquery ``q``; the outer SELECT turns
    each output column into ``CASE WHEN <visible_j> THEN a{j} END``,
    yielding NULL exactly where the mask withholds a cell.  With
    ``drop_fully_masked`` the outer WHERE keeps only tuples some row
    (or an always-visible column) delivers at least one cell of.
    """
    if len(plan.output) != view.ncols:
        raise BackendError(
            f"mask arity {view.ncols} does not match plan output "
            f"arity {len(plan.output)}"
        )
    inner = plan_to_sql(plan, schema)
    refs = tuple(output_name(j) for j in range(view.ncols))
    visible = visibility_sql(view, refs)
    select = ", ".join(
        f"CASE WHEN {condition} THEN {ref} END AS m{j}"
        for j, (condition, ref) in enumerate(zip(visible, refs))
    )
    sql = f"SELECT {select} FROM ({inner}) AS q"
    if drop_fully_masked and not view.always_visible:
        matches = [row_predicate_sql(row, refs) for row in view.rows]
        any_visible = " OR ".join(matches) if matches else SQL_FALSE
        sql += f" WHERE {any_visible}"
    return sql
