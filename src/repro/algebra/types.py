"""Attribute domains.

The paper assumes each attribute is associated with a domain — a
nonempty, finite or countably infinite, set of values (Section 2).  We
model three concrete domains, all totally ordered so that every
comparator of the paper (<, <=, >=, =, !=, >) is meaningful:

* :data:`INTEGER` — Python ints (salaries, budgets).
* :data:`STRING` — Python strings under lexicographic order (names,
  titles, project numbers).
* :data:`REAL` — Python floats.

Domains matter in three places: validating instance rows, type-checking
comparisons at statement-analysis time, and deciding whether interval
endpoints may be tightened (integers are discrete, the others dense).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import TypeMismatchError

#: The union of Python types a database cell may hold.
Value = Union[int, float, str]


@dataclass(frozen=True)
class Domain:
    """A set of values an attribute may take.

    Attributes:
        name: human-readable domain name (``"integer"``, ``"string"``,
            ``"real"``).
        discrete: True when the domain is discrete and strict interval
            bounds can be tightened (``x > 3`` becomes ``x >= 4``).
    """

    name: str
    discrete: bool = False

    def contains(self, value: Value) -> bool:
        """Report whether ``value`` belongs to this domain.

        Booleans are excluded from the integer domain even though
        ``bool`` subclasses ``int`` in Python.
        """
        if isinstance(value, bool):
            return False
        if self.name == "integer":
            return isinstance(value, int)
        if self.name == "real":
            return isinstance(value, (int, float))
        if self.name == "string":
            return isinstance(value, str)
        raise TypeMismatchError(f"unknown domain {self.name!r}")

    def check(self, value: Value) -> Value:
        """Return ``value`` unchanged, raising if it is out of domain."""
        if not self.contains(value):
            raise TypeMismatchError(
                f"value {value!r} does not belong to domain {self.name}"
            )
        return value

    @property
    def ordered(self) -> bool:
        """All supported domains are totally ordered."""
        return True

    def comparable_with(self, other: "Domain") -> bool:
        """Report whether values of this domain compare with ``other``'s.

        The two numeric domains are mutually comparable; strings only
        compare with strings.
        """
        numeric = {"integer", "real"}
        if self.name in numeric and other.name in numeric:
            return True
        return self.name == other.name

    def __str__(self) -> str:
        return self.name


INTEGER = Domain("integer", discrete=True)
STRING = Domain("string")
REAL = Domain("real")

_BY_NAME = {d.name: d for d in (INTEGER, STRING, REAL)}


def domain_named(name: str) -> Domain:
    """Look up a domain by name (``"integer"``, ``"string"``, ``"real"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise TypeMismatchError(f"unknown domain {name!r}") from None


def domain_of_value(value: Value) -> Domain:
    """Infer the domain a constant naturally belongs to."""
    if isinstance(value, bool):
        raise TypeMismatchError("boolean constants are not supported")
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return REAL
    if isinstance(value, str):
        return STRING
    raise TypeMismatchError(f"unsupported constant {value!r}")
