"""S12 — the interactive front end of Section 6.

``repro-authdb`` (or ``python -m repro.cli``) starts a small REPL over
one of the bundled databases.  Users issue the paper's statements —
``view``, ``permit`` (named or anonymous ``permit (R.A, ...) where ...
to U``), ``revoke``, ``retrieve``, plus the Section 6(1) updates
``insert into`` / ``delete from`` / ``modify ... set`` — and receive
masked relations plus inferred permit statements, with the
meta-relations kept completely transparent, exactly as Section 6
envisions.

Dot-commands inspect the machinery:

    .user NAME              act as NAME
    .tables                 list relations and row counts
    .views                  list defined views
    .grants                 show the PERMISSION relation
    .meta RELATION          show a meta-relation (Figure 1 style)
    .trace                  toggle mask-derivation traces
    .explain retrieve ...   full paper-style derivation trace
    .save FILE / .load FILE persist or restore database + permissions
    .audit                  show the audit trail (when enabled)
    .stats                  show derivation-cache statistics
    .help / .quit
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, TextIO

from repro.core.engine import AuthorizationEngine
from repro.core.session import FrontEnd
from repro.errors import ReproError
from repro.experiments.tables import (
    figure1_table,
    mask_table,
    permission_table,
)
from repro.workloads.paperdb import build_paper_engine
from repro.workloads.scenarios import corporate_scenario, hospital_scenario

BUILTIN_DATABASES: Dict[str, Callable[[], AuthorizationEngine]] = {
    "paper": build_paper_engine,
    "hospital": lambda: hospital_scenario().engine,
    "corporate": lambda: corporate_scenario().engine,
}


class Repl:
    """Line-oriented front end; pure functions of input lines, so the
    same class drives the terminal and the tests."""

    def __init__(self, engine: AuthorizationEngine, user: str = "admin") -> None:
        self.engine = engine
        self.front_end = FrontEnd(engine)
        self.user = user
        self.trace = False
        self.done = False

    # ------------------------------------------------------------------

    def process_line(self, line: str) -> str:
        """Process one input line and return the text to display."""
        line = line.strip()
        if not line or line.startswith("--"):
            return ""
        if line.startswith("."):
            return self._dot_command(line)
        try:
            result = self.front_end.execute(line, self.user)
        except ReproError as error:
            return f"error: {error}"
        output = result.message
        if result.answer is not None:
            answer = result.answer
            if answer.error is not None:
                output += (
                    f"\n-- fail-closed: nothing delivered"
                    f" ({answer.error})"
                )
            elif answer.degraded:
                output += (
                    f"\n-- degraded derivation: {answer.degradation}"
                    f" (level {answer.degradation_level})"
                )
        if self.trace and result.answer is not None:
            derivation = result.answer.derivation
            assert derivation.mask is not None
            output += "\n\n-- mask (A') --\n"
            output += mask_table(derivation.mask)
        return output

    # ------------------------------------------------------------------

    def _dot_command(self, line: str) -> str:
        parts = line.split()
        command, args = parts[0], parts[1:]
        if command == ".quit":
            self.done = True
            return "bye"
        if command == ".help":
            return __doc__ or ""
        if command == ".user":
            if not args:
                return f"current user: {self.user}"
            self.user = args[0]
            return f"acting as {self.user}"
        if command == ".trace":
            self.trace = not self.trace
            return f"trace {'on' if self.trace else 'off'}"
        if command == ".tables":
            lines = [
                f"{name}: {relation.cardinality} rows"
                for name, relation in self.engine.database
            ]
            return "\n".join(lines)
        if command == ".views":
            names = self.engine.catalog.view_names()
            if not names:
                return "(no views defined)"
            return "\n".join(
                str(self.engine.catalog.view(name).definition)
                for name in names
            )
        if command == ".grants":
            return permission_table(self.engine.catalog)
        if command == ".meta":
            if not args:
                return "usage: .meta RELATION"
            try:
                return figure1_table(
                    self.engine.database, self.engine.catalog, args[0]
                )
            except ReproError as error:
                return f"error: {error}"
        if command == ".explain":
            from repro.core.explain import explain

            statement = line[len(".explain"):].strip()
            if not statement:
                return "usage: .explain retrieve (...) [where ...]"
            try:
                return explain(self.engine, self.user, statement)
            except ReproError as error:
                return f"error: {error}"
        if command == ".save":
            if not args:
                return "usage: .save FILE"
            from repro import storage

            try:
                storage.dump(self.engine.database, self.engine.catalog,
                             args[0])
            except OSError as error:
                return f"error: {error}"
            return f"saved to {args[0]}"
        if command == ".load":
            if not args:
                return "usage: .load FILE"
            from repro import storage
            from repro.core.engine import AuthorizationEngine

            try:
                database, catalog = storage.load(args[0])
            except (OSError, ReproError, ValueError) as error:
                return f"error: {error}"
            self.engine = AuthorizationEngine(
                database, catalog, self.engine.config,
                audit=self.engine.audit,
            )
            self.front_end = type(self.front_end)(self.engine)
            return f"loaded {args[0]}"
        if command == ".audit":
            if self.engine.audit is None:
                return "audit trail not enabled (start with --audit)"
            return self.engine.audit.report()
        if command == ".stats":
            if self.engine.config.derivation_cache_size <= 0:
                return "derivation cache disabled (derivation_cache_size=0)"
            return self.engine.stats().render()
        return f"unknown command {command}; try .help"


def run_repl(engine: AuthorizationEngine, user: str,
             stdin: TextIO, stdout: TextIO) -> int:
    """Drive a REPL over the given streams; returns an exit code."""
    repl = Repl(engine, user)
    interactive = stdin.isatty()
    if interactive:
        stdout.write(
            "repro-authdb — Motro (ICDE 1989) authorization front end\n"
            "type statements (view/permit/retrieve) or .help\n"
        )
    while not repl.done:
        if interactive:
            stdout.write(f"{repl.user}> ")
            stdout.flush()
        line = stdin.readline()
        if not line:
            break
        output = repl.process_line(line)
        if output:
            stdout.write(output + "\n")
    return 0


def main(argv: Optional[list] = None) -> int:
    """Console entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-authdb",
        description="Interactive authorization front end (Section 6).",
    )
    parser.add_argument(
        "--db", choices=sorted(BUILTIN_DATABASES), default="paper",
        help="bundled database to load (default: paper)",
    )
    parser.add_argument(
        "--user", default="admin", help="initial acting user",
    )
    parser.add_argument(
        "--execute", metavar="FILE",
        help="run statements from FILE instead of stdin",
    )
    parser.add_argument(
        "--audit", action="store_true",
        help="record an audit trail (inspect with .audit)",
    )
    parser.add_argument(
        "--snapshot", metavar="FILE",
        help="load a saved database + permissions instead of --db",
    )
    parser.add_argument(
        "--faults", metavar="SPEC",
        help="install a fault-injection plan, e.g. "
             "'product:raise,cache.get:raise:2' (testing; see "
             "repro.testing.faults)",
    )
    options = parser.parse_args(argv)

    if options.faults:
        from repro.testing.faults import install, plan_from_spec

        install(plan_from_spec(options.faults))

    if options.snapshot:
        from repro import storage
        from repro.core.engine import AuthorizationEngine

        database, catalog = storage.load(options.snapshot)
        engine = AuthorizationEngine(database, catalog)
    else:
        engine = BUILTIN_DATABASES[options.db]()
    if options.audit:
        from repro.core.audit import AuditLog

        engine.audit = AuditLog()
    if options.execute:
        with open(options.execute, encoding="utf-8") as handle:
            return run_repl(engine, options.user, handle, sys.stdout)
    return run_repl(engine, options.user, sys.stdin, sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
