"""Canonical keys for PSJ plans.

The derivation cache (:mod:`repro.core.cache`) must recognise that two
syntactically different retrieve statements describe the same plan —
otherwise every paraphrase of a hot query pays the full meta-algebra
cost.  :func:`canonical_plan_key` maps a :class:`PSJQuery` to a
hashable key with two guarantees:

* **stability** — the key is invariant under reordering of the
  selection conjuncts, under flipping individual comparisons
  (``a < b`` vs ``b > a``), and under renumbering the occurrences of a
  relation (``EMPLOYEE:1`` joined to ``EMPLOYEE:2`` keys the same as
  the query written with the occurrences swapped);
* **injectivity up to equivalence** — the key is a complete positional
  encoding of the plan (occurrence multiset, condition multiset, and
  the projection list *in output order*), so two plans with the same
  key are isomorphic up to an occurrence renaming and therefore
  deliver the same answer and the same mask.

Keys are plain nested tuples of strings and ints, cheap to compute and
to hash; they deliberately do **not** fold in the user or the catalog
version — the cache composes those separately.
"""

from __future__ import annotations

from itertools import permutations, product
from typing import Callable, Dict, List, Sequence, Tuple

from repro.algebra.expression import (
    AtomicCondition,
    Col,
    Const,
    Operand,
    PSJQuery,
)
from repro.algebra.schema import DatabaseSchema

#: Give up on occurrence renumbering when a plan has more than this
#: many candidate assignments (k! per relation with k occurrences).
#: Falling back to the written numbering is always *safe* — it can only
#: cost cache sharing, never correctness — and real plans sit far
#: below the cap.
PERMUTATION_CAP = 120

#: A hashable canonical key (opaque to callers).
PlanKey = Tuple


def canonical_plan_key(plan: PSJQuery, schema: DatabaseSchema) -> PlanKey:
    """The canonical key of ``plan`` over ``schema``.

    The key is the lexicographically least encoding of the plan over
    all renumberings of same-relation occurrences; see the module
    docstring for the guarantees.
    """
    # Column index -> (relation, occurrence slot) in product order.
    owners: List[int] = []        # column -> occurrence position
    relations: List[str] = []     # occurrence position -> relation name
    for position, occ in enumerate(plan.occurrences):
        relations.append(occ.relation)
        owners.extend([position] * schema.get(occ.relation).arity)
    offsets = plan.offsets(schema)

    counts: Dict[str, int] = {}
    for name in relations:
        counts[name] = counts.get(name, 0) + 1
    occurrence_part = tuple(sorted(counts.items()))

    best: Tuple = ()
    for ordinals in _candidate_numberings(relations):

        def encode_operand(operand: Operand) -> Tuple:
            if isinstance(operand, Col):
                position = owners[operand.index]
                return (
                    "col",
                    relations[position],
                    ordinals[position],
                    operand.index - offsets[position],
                )
            assert isinstance(operand, Const)
            return ("const", type(operand.value).__name__,
                    repr(operand.value))

        conditions = tuple(sorted(
            _encode_condition(condition, encode_operand)
            for condition in plan.conditions
        ))
        output = tuple(encode_operand(Col(i)) for i in plan.output)
        candidate = (conditions, output)
        if not best or candidate < best:
            best = candidate

    return ("psj", occurrence_part) + best


def _encode_condition(condition: AtomicCondition,
                      encode_operand: Callable[[Operand], Tuple]) -> Tuple:
    """Orientation-normalized encoding of one conjunct."""
    forward = (encode_operand(condition.lhs), condition.op.value,
               encode_operand(condition.rhs))
    backward = (encode_operand(condition.rhs),
                condition.op.flipped().value,
                encode_operand(condition.lhs))
    return min(forward, backward)


def _candidate_numberings(relations: Sequence[str]
                          ) -> List[Tuple[int, ...]]:
    """Every renumbering of same-relation occurrence slots.

    Returns tuples mapping occurrence position -> ordinal within its
    relation.  Relations occurring once always get ordinal 0; a
    relation with k occurrences contributes the k! assignments of
    ordinals 0..k-1 to its slots.
    """
    slots: Dict[str, List[int]] = {}
    for position, name in enumerate(relations):
        slots.setdefault(name, []).append(position)

    total = 1
    for positions in slots.values():
        for i in range(2, len(positions) + 1):
            total *= i
        if total > PERMUTATION_CAP:
            return [_identity_numbering(relations)]

    per_relation: List[List[Tuple[Tuple[int, int], ...]]] = []
    for positions in slots.values():
        options = []
        for perm in permutations(range(len(positions))):
            options.append(tuple(zip(positions, perm)))
        per_relation.append(options)

    numberings: List[Tuple[int, ...]] = []
    for combo in product(*per_relation):
        ordinals = [0] * len(relations)
        for assignment in combo:
            for position, ordinal in assignment:
                ordinals[position] = ordinal
        numberings.append(tuple(ordinals))
    return numberings or [_identity_numbering(relations)]


def _identity_numbering(relations: Sequence[str]) -> Tuple[int, ...]:
    seen: Dict[str, int] = {}
    ordinals = []
    for name in relations:
        ordinals.append(seen.get(name, 0))
        seen[name] = ordinals[-1] + 1
    return tuple(ordinals)
