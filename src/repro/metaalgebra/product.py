"""The meta-relation product (Definition 1) with padding (Section 4.2).

Definition 1 concatenates every pair of meta-tuples.  The first
refinement of Section 4.2 additionally pads: for operand tuples
``(a1..am)`` and ``(b1..bn)`` it also includes ``(a1..am, ⊔..⊔)`` and
``(⊔..⊔, b1..bn)``, so that subviews of one operand survive projections
that remove the other operand's attributes.

For the n-ary products the engine builds (all products are performed
first, per Section 4.1), padding generalizes to: each occurrence
contributes either one of its meta-tuples or an all-blank pad, with the
all-pads combination excluded.  The binary padded product of the paper
is the n=2 instance.  This is exactly the shape of the paper's
Example 2 product table.

Variables are concatenated *as stored*: meta-tuples of the same view
share variables by construction (join semantics), and different views
can never collide because the catalog names variables globally.

Two implementations share that combination loop:

* :func:`meta_product` — the reference: materialize every combination,
  then dedupe.  Section 4.1's dangling-reference pruning runs
  afterwards (``repro.metaalgebra.prune``) and typically discards most
  of what was built.
* :func:`meta_product_streaming` — the hot path: the ``defining`` map
  is known before the product runs, so the dangling check and the
  provenance-aware dedupe are interleaved into the loop and rows
  destined for pruning are never materialized.  The output is
  identical to materialize-then-prune
  (``tests/property/test_streaming_product.py``), but ``max_mask_rows``
  only meters rows that actually survive.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.algebra.relation import Column
from repro.meta.metatuple import MetaTuple, TupleId, blank_tuple, \
    canonical_key
from repro.metaalgebra.budget import Budget
from repro.metaalgebra.prune import ExcusePredicate, meta_is_closed
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.predicates.store import ConstraintStore
from repro.testing.faults import maybe_fault


def meta_product(
    columns: Tuple[Column, ...],
    operands: Sequence[Sequence[MetaTuple]],
    arities: Sequence[int],
    global_store: ConstraintStore,
    padding: bool = True,
    budget: Optional[Budget] = None,
) -> MaskTable:
    """Compute the (optionally padded) product of meta-tuple operands.

    Args:
        columns: column descriptors of the resulting product.
        operands: for each occurrence, its candidate meta-tuples.
        arities: the arity of each occurrence's relation.
        global_store: the merged COMPARISON store of the participating
            views; each result row receives the sub-store reachable
            from its own variables.
        padding: include blank-padded combinations (Section 4.2's first
            refinement).
        budget: optional resource budget, checked while the product is
            materialized so an oversized node aborts early.
    """
    maybe_fault("product", budget)
    if budget is not None:
        budget.check_deadline("product")
    choice_lists: List[List[Optional[MetaTuple]]] = []
    for tuples in operands:
        choices: List[Optional[MetaTuple]] = list(tuples)
        if padding:
            choices.append(None)  # the blank pad
        choice_lists.append(choices)

    pads = [blank_tuple(arity) for arity in arities]

    # Many rows share a variable set; memoize the store restriction.
    restriction_cache: dict = {}

    def restricted_store(variables: Iterable[str]) -> ConstraintStore:
        key = frozenset(variables)
        cached = restriction_cache.get(key)
        if cached is None:
            cached = global_store.restrict_closure(variables)
            restriction_cache[key] = cached
        return cached

    rows: List[MaskRow] = []
    for combination in itertools.product(*choice_lists):
        if budget is not None:
            budget.tick("product")
        if all(choice is None for choice in combination):
            continue
        parts = [
            pads[i] if choice is None else choice
            for i, choice in enumerate(combination)
        ]
        combined = parts[0]
        for part in parts[1:]:
            combined = combined.concat(part)
        if combined.is_all_blank and not combined.has_stars:
            continue
        rows.append(MaskRow(combined,
                            restricted_store(combined.variables())))
        if budget is not None:
            budget.charge_rows(len(rows), "product")

    # Provenance-aware dedupe: true replications collapse, but rows that
    # differ only in provenance stay distinct for the pruning stage.
    return MaskTable(columns, tuple(rows)).deduped(include_provenance=True)


def meta_product_streaming(
    columns: Tuple[Column, ...],
    operands: Sequence[Sequence[MetaTuple]],
    arities: Sequence[int],
    global_store: ConstraintStore,
    defining: Dict[str, FrozenSet[TupleId]],
    padding: bool = True,
    budget: Optional[Budget] = None,
    excuse: Optional[ExcusePredicate] = None,
    prune: bool = True,
) -> MaskTable:
    """The padded product with pruning and dedupe folded into the loop.

    Produces exactly
    ``prune_dangling(meta_product(...), defining, excuse)`` (or plain
    ``meta_product(...)`` with ``prune=False``) without ever
    materializing the rows those stages would discard:

    * operand meta-tuples that are exact duplicates within their
      operand are dropped up front — every combination they would
      contribute is cell-, view- and provenance-identical to one built
      from the first copy, so the dedupe below would discard it anyway;
    * each combination's canonical key is recorded *before* the
      dangling check (a pruned row must still shadow later
      replications, exactly as dedupe-then-prune does);
    * a combination whose variables reference meta-tuples outside its
      own provenance is dropped without constructing a
      :class:`MaskRow`, so ``budget.charge_rows`` meters only rows
      that survive.

    Args mirror :func:`meta_product`, plus:
        defining: the catalog's D(x) map for the admissible views.
        excuse: the existential-closure predicate (Section 4.1's
            pruning is unconditional when absent).
        prune: fold the dangling check in; ``False`` streams only the
            dedupe (used when the configuration disables pruning).
    """
    maybe_fault("product", budget)
    if prune:
        maybe_fault("prune")
    if budget is not None:
        budget.check_deadline("product")

    choice_lists: List[List[Optional[MetaTuple]]] = []
    for tuples in operands:
        seen_exact = set()
        choices: List[Optional[MetaTuple]] = []
        for candidate in tuples:
            if candidate in seen_exact:
                continue
            seen_exact.add(candidate)
            choices.append(candidate)
        if padding:
            choices.append(None)  # the blank pad
        choice_lists.append(choices)

    pads = [blank_tuple(arity) for arity in arities]

    # Many rows share a variable set; memoize the store restriction.
    restriction_cache: dict = {}

    def restricted_store(variables: Iterable[str]) -> ConstraintStore:
        key = frozenset(variables)
        cached = restriction_cache.get(key)
        if cached is None:
            cached = global_store.restrict_closure(variables)
            restriction_cache[key] = cached
        return cached

    # The dangling check depends only on (variables, provenance) —
    # memoizable, except under an excuse predicate, which may inspect
    # the whole meta-tuple.
    closed_cache: Optional[dict] = {} if excuse is None else None

    def is_closed(meta: MetaTuple) -> bool:
        if closed_cache is None:
            return meta_is_closed(meta, defining, excuse)
        key = (meta.variables(), meta.provenance)
        cached = closed_cache.get(key)
        if cached is None:
            cached = meta_is_closed(meta, defining, None)
            closed_cache[key] = cached
        return cached

    seen_keys: set = set()
    rows: List[MaskRow] = []
    for combination in itertools.product(*choice_lists):
        if budget is not None:
            budget.tick("product")
        if all(choice is None for choice in combination):
            continue
        parts = [
            pads[i] if choice is None else choice
            for i, choice in enumerate(combination)
        ]
        combined = parts[0]
        for part in parts[1:]:
            combined = combined.concat(part)
        if combined.is_all_blank and not combined.has_stars:
            continue
        store = restricted_store(combined.variables())
        key = canonical_key(combined, store, include_provenance=True)
        if key in seen_keys:
            continue
        seen_keys.add(key)
        if prune and not is_closed(combined):
            continue
        rows.append(MaskRow(combined, store))
        if budget is not None:
            budget.charge_rows(len(rows), "product")
    return MaskTable(columns, tuple(rows))
