"""The meta-relation product (Definition 1) with padding (Section 4.2).

Definition 1 concatenates every pair of meta-tuples.  The first
refinement of Section 4.2 additionally pads: for operand tuples
``(a1..am)`` and ``(b1..bn)`` it also includes ``(a1..am, ⊔..⊔)`` and
``(⊔..⊔, b1..bn)``, so that subviews of one operand survive projections
that remove the other operand's attributes.

For the n-ary products the engine builds (all products are performed
first, per Section 4.1), padding generalizes to: each occurrence
contributes either one of its meta-tuples or an all-blank pad, with the
all-pads combination excluded.  The binary padded product of the paper
is the n=2 instance.  This is exactly the shape of the paper's
Example 2 product table.

Variables are concatenated *as stored*: meta-tuples of the same view
share variables by construction (join semantics), and different views
can never collide because the catalog names variables globally.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.algebra.relation import Column
from repro.meta.metatuple import MetaTuple, blank_tuple
from repro.metaalgebra.budget import Budget
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.predicates.store import ConstraintStore
from repro.testing.faults import maybe_fault


def meta_product(
    columns: Tuple[Column, ...],
    operands: Sequence[Sequence[MetaTuple]],
    arities: Sequence[int],
    global_store: ConstraintStore,
    padding: bool = True,
    budget: Optional[Budget] = None,
) -> MaskTable:
    """Compute the (optionally padded) product of meta-tuple operands.

    Args:
        columns: column descriptors of the resulting product.
        operands: for each occurrence, its candidate meta-tuples.
        arities: the arity of each occurrence's relation.
        global_store: the merged COMPARISON store of the participating
            views; each result row receives the sub-store reachable
            from its own variables.
        padding: include blank-padded combinations (Section 4.2's first
            refinement).
        budget: optional resource budget, checked while the product is
            materialized so an oversized node aborts early.
    """
    maybe_fault("product", budget)
    if budget is not None:
        budget.check_deadline("product")
    choice_lists: List[List[Optional[MetaTuple]]] = []
    for tuples in operands:
        choices: List[Optional[MetaTuple]] = list(tuples)
        if padding:
            choices.append(None)  # the blank pad
        choice_lists.append(choices)

    pads = [blank_tuple(arity) for arity in arities]

    # Many rows share a variable set; memoize the store restriction.
    restriction_cache: dict = {}

    def restricted_store(variables) -> ConstraintStore:
        key = frozenset(variables)
        cached = restriction_cache.get(key)
        if cached is None:
            cached = global_store.restrict_closure(variables)
            restriction_cache[key] = cached
        return cached

    rows: List[MaskRow] = []
    for combination in itertools.product(*choice_lists):
        if budget is not None:
            budget.tick("product")
        if all(choice is None for choice in combination):
            continue
        parts = [
            pads[i] if choice is None else choice
            for i, choice in enumerate(combination)
        ]
        combined = parts[0]
        for part in parts[1:]:
            combined = combined.concat(part)
        if combined.is_all_blank and not combined.has_stars:
            continue
        rows.append(MaskRow(combined,
                            restricted_store(combined.variables())))
        if budget is not None:
            budget.charge_rows(len(rows), "product")

    # Provenance-aware dedupe: true replications collapse, but rows that
    # differ only in provenance stay distinct for the pruning stage.
    return MaskTable(columns, tuple(rows)).deduped(include_provenance=True)
