"""Pruning of mask rows.

Section 4.1: after the products are performed, the result "is pruned to
retain only those meta-tuples that do not contain references to other
meta-tuples".  A product row references another meta-tuple when one of
its variables is defined (per the catalog's D(x) map) by a meta-tuple
that is not among the row's provenance — such a row's selection
condition mentions "a set of values defined elsewhere" and is not
expressible within the row, so it cannot be delivered.

The optional existential-closure extension (``repro.extensions.closure``)
keeps a row whose missing meta-tuple is subsumed by one that *is*
present — the paper's own EST discussion shows such rows can be sound.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional

from repro.meta.metatuple import MetaTuple, TupleId
from repro.metaalgebra.budget import Budget
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.testing.faults import maybe_fault

#: Signature of the existential-closure excuse predicate: given the
#: row's meta-tuple and one missing defining tuple id, may the row keep
#: the variable anyway?
ExcusePredicate = Callable[[MetaTuple, TupleId], bool]


def prune_dangling(
    table: MaskTable,
    defining: Dict[str, FrozenSet[TupleId]],
    excuse: Optional[ExcusePredicate] = None,
    budget: Optional[Budget] = None,
) -> MaskTable:
    """Drop rows containing references to absent meta-tuples."""
    maybe_fault("prune", budget)
    rows: List[MaskRow] = []
    for row in table.rows:
        if budget is not None:
            budget.tick("prune")
        if meta_is_closed(row.meta, defining, excuse):
            rows.append(row)
    if budget is not None:
        budget.charge_rows(len(rows), "prune")
    return table.with_rows(rows)


def meta_is_closed(
    meta: MetaTuple,
    defining: Dict[str, FrozenSet[TupleId]],
    excuse: Optional[ExcusePredicate] = None,
) -> bool:
    """Is every variable of ``meta`` defined within its own provenance?

    The row-level predicate behind :func:`prune_dangling`, exposed so
    the streaming product (``repro.metaalgebra.product``) can apply the
    same check *before* a product row is ever materialized.
    """
    provenance = meta.provenance
    for var in meta.variables():
        missing = defining.get(var, frozenset()) - provenance
        if not missing:
            continue
        if excuse is None:
            return False
        if not all(excuse(meta, tuple_id) for tuple_id in missing):
            return False
    return True


def prune_unsatisfiable(table: MaskTable,
                        budget: Optional[Budget] = None) -> MaskTable:
    """Drop rows whose constraints are provably contradictory."""
    rows = [
        row for row in table.rows if not row.store.is_definitely_unsat()
    ]
    if budget is not None:
        budget.charge_rows(len(rows), "prune")
    return table.with_rows(rows)


def prune_invisible(table: MaskTable,
                    budget: Optional[Budget] = None) -> MaskTable:
    """Drop rows with no starred cell: they deliver nothing."""
    rows = [row for row in table.rows if row.meta.has_stars]
    if budget is not None:
        budget.charge_rows(len(rows), "prune")
    return table.with_rows(rows)


def cleanup(table: MaskTable,
            budget: Optional[Budget] = None) -> MaskTable:
    """Final mask hygiene: drop invisible rows, dedupe, drop subsumed rows.

    A mask row is *subsumed* by another when the other stars at least
    the same columns and places no restriction at all (all blank, no
    constraints) — then the restricted row adds no visible cell.  Only
    this cheap, provably sound case is removed; general subsumption is
    containment checking, which the paper's method deliberately avoids.
    """
    table = prune_invisible(table, budget).deduped()
    unrestricted = [
        row for row in table.rows
        if all(c.is_blank for c in row.meta.cells)
    ]
    if not unrestricted:
        return table

    # Widest unrestricted rows first; each kept row covers every later
    # row (restricted or not) whose stars it contains.
    unrestricted.sort(
        key=lambda r: len(r.meta.starred_positions()), reverse=True
    )
    kept_star_sets: List[frozenset] = []
    kept_unrestricted = []
    for row in unrestricted:
        stars = frozenset(row.meta.starred_positions())
        if any(stars <= kept for kept in kept_star_sets):
            continue
        kept_star_sets.append(stars)
        kept_unrestricted.append(row)

    rows = [
        row for row in table.rows
        if (row in kept_unrestricted)
        or (row not in unrestricted
            and not any(
                frozenset(row.meta.starred_positions()) <= kept
                for kept in kept_star_sets
            ))
    ]
    if budget is not None:
        budget.charge_rows(len(rows), "cleanup")
    return table.with_rows(rows)
