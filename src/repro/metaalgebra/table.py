"""Mask tables: intermediate results of the meta-algebra.

A :class:`MaskTable` is what flows between the extended operators: a
set of mask rows over labelled columns.  Each :class:`MaskRow` pairs a
meta-tuple with its own constraint store — rows diverge during the
selection phase (one row's variable may be narrowed or substituted
while another's is cleared), so constraints cannot stay global.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from repro.algebra.relation import Column
from repro.meta.metatuple import MetaTuple, canonical_key
from repro.predicates.store import ConstraintStore


@dataclass(frozen=True)
class MaskRow:
    """One mask meta-tuple with its private constraint store."""

    meta: MetaTuple
    store: ConstraintStore

    def key(self, include_provenance: bool = False) -> Tuple:
        """Canonical (rename-invariant) identity, computed once per variant.

        Dedupe and the streaming product ask the same row for its key
        repeatedly, and canonicalization walks the whole store — so both
        variants are memoized on the instance (a ``__dict__`` write via
        ``object.__setattr__``; dataclass equality and hashing compare
        fields only, so the memo never leaks into either).
        """
        cached = self.__dict__.get("_keys")
        if cached is None:
            cached = {}
            object.__setattr__(self, "_keys", cached)
        key = cached.get(include_provenance)
        if key is None:
            key = canonical_key(self.meta, self.store, include_provenance)
            cached[include_provenance] = key
        return key

    def __str__(self) -> str:
        return str(self.meta)


@dataclass(frozen=True)
class MaskTable:
    """An intermediate (or final) meta-relation over derived columns."""

    columns: Tuple[Column, ...]
    rows: Tuple[MaskRow, ...]

    def labels(self) -> Tuple[str, ...]:
        return tuple(c.label for c in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    def with_rows(self, rows: Iterable[MaskRow]) -> "MaskTable":
        return MaskTable(self.columns, tuple(rows))

    def deduped(self, include_provenance: bool = False) -> "MaskTable":
        """Remove replicated rows ("after replications are removed").

        Before the dangling-reference pruning, dedupe with
        ``include_provenance=True``: cell-identical rows with different
        provenance prune differently and must survive until then.
        """
        seen = set()
        out: List[MaskRow] = []
        for row in self.rows:
            key = row.key(include_provenance)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return self.with_rows(out)

    def __iter__(self) -> Iterator[MaskRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def mask_row(meta: MetaTuple,
             store: ConstraintStore = ConstraintStore.empty()) -> MaskRow:
    """Convenience constructor."""
    return MaskRow(meta, store)
