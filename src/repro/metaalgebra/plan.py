"""Mask derivation: running the query's plan over the meta-relations.

This is the dashed path of the paper's Figure 2: the algebra expression
S that implements the query is transformed into S' — "a sequence of
products, followed by selections, and ending with projections" — and
applied to the meta-relations, yielding the views A' of the answer that
the user is permitted to access.

Stages (each recorded in :class:`MaskDerivation` so the experiment
harness can print the paper's intermediate tables):

1. *Stage-one pruning* — keep only meta-tuples of views the user may
   access that are "defined in these relations in their entirety".
2. *Self-join closure* (refinement 3, when enabled) — extend each
   pruned meta-relation with lossless combinations across views.
3. *Padded product* (Definition 1 + refinement 1).
4. *Dangling-reference pruning* (Section 4.1), optionally excused by
   the existential-closure extension.
5. *Selections* (Definition 2 + refinement 2), in query order.
6. *Projection* (Definition 3).
7. *Cleanup* — drop rows that deliver nothing, dedupe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.algebra.expression import AtomicCondition, PSJQuery
from repro.algebra.schema import DatabaseSchema
from repro.config import DEFAULT_CONFIG, EngineConfig
from repro.meta.catalog import PermissionCatalog
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.budget import Budget
from repro.metaalgebra.product import meta_product, meta_product_streaming
from repro.metaalgebra.projection import meta_project
from repro.metaalgebra.prune import (
    ExcusePredicate,
    cleanup,
    prune_dangling,
    prune_unsatisfiable,
)
from repro.metaalgebra.selection import (
    FreshVars,
    SelectionStep,
    group_conditions,
    meta_select,
)
from repro.metaalgebra.selfjoin import selfjoin_closure
from repro.metaalgebra.table import MaskTable
from repro.testing.faults import maybe_fault


@dataclass
class MaskDerivation:
    """The full trace of one mask derivation."""

    admissible_views: Tuple[str, ...]
    pruned_meta: Dict[str, Tuple[MetaTuple, ...]]
    selfjoin_added: Dict[str, Tuple[MetaTuple, ...]]
    #: The product "after replications are removed" (display form,
    #: provenance-blind).  When the derivation ``streamed``, rows
    #: destined for the dangling-reference pruning were never
    #: materialized, so this holds the post-prune table instead; ask
    #: the engine for a non-streaming trace (``AuthorizationEngine
    #: .trace``) to print the paper's full pre-prune product.
    raw_product: MaskTable
    pruned_product: MaskTable
    after_selections: List[Tuple[SelectionStep, MaskTable]] = field(
        default_factory=list
    )
    projected: Optional[MaskTable] = None
    mask: Optional[MaskTable] = None
    #: Ladder rung this derivation ran at (0 = full fidelity; see
    #: ``repro.metaalgebra.ladder.DEGRADATION_LEVELS``).
    degradation_level: int = 0
    #: The failure that forced the first descent below rung 0
    #: (``None`` at full fidelity).
    degradation_reason: Optional[str] = None
    #: True when the product stage streamed (pruning and dedupe folded
    #: into the combination loop, pre-prune rows never materialized).
    streamed: bool = False


def derive_mask(
    psj: PSJQuery,
    schema: DatabaseSchema,
    catalog: PermissionCatalog,
    user: str,
    config: EngineConfig = DEFAULT_CONFIG,
    excuse: Optional[ExcusePredicate] = None,
    selfjoin_pool: Optional[Dict[str, Tuple[MetaTuple, ...]]] = None,
    budget: Optional[Budget] = None,
) -> MaskDerivation:
    """Derive the permission mask for ``user``'s query ``psj``.

    Args:
        excuse: existential-closure predicate (wired by the engine when
            ``config.existential_closure`` is set).
        selfjoin_pool: pre-computed self-join closure per relation (the
            engine's per-user cache); computed on the fly when absent.
        budget: optional resource budget checked at operator
            boundaries; exhaustion raises
            :class:`~repro.errors.BudgetExceededError` or
            :class:`~repro.errors.DerivationTimeout` for the
            degradation ladder to catch.
    """
    maybe_fault("plan", budget)
    relations = sorted(psj.relation_names())
    admissible = catalog.admissible_views(user, relations)
    store = catalog.store_for(admissible)
    defining = catalog.defining_tuples(admissible)

    admissible_set = frozenset(admissible)
    pruned_meta: Dict[str, Tuple[MetaTuple, ...]] = {}
    selfjoin_added: Dict[str, Tuple[MetaTuple, ...]] = {}
    for relation in relations:
        originals = catalog.tuples_for(relation, admissible)
        pruned_meta[relation] = originals
        if config.self_joins:
            if selfjoin_pool is not None and relation in selfjoin_pool:
                # The cached closure spans all of the user's views;
                # keep only combinations built entirely from views that
                # are admissible for *this* query (stage-one pruning
                # applies to combined tuples too).
                added = tuple(
                    t for t in selfjoin_pool[relation]
                    if t.views <= admissible_set
                )
            else:
                added = selfjoin_closure(
                    schema.get(relation), originals, store,
                    config.max_selfjoin_rounds,
                    config.max_selfjoin_tuples,
                    budget=budget,
                )
            selfjoin_added[relation] = added
            if budget is not None:
                budget.charge_selfjoin(
                    len(originals) + len(added), relation
                )
        else:
            selfjoin_added[relation] = ()

    columns = psj.product_columns(schema)
    arities = [schema.get(o.relation).arity for o in psj.occurrences]
    operands = [
        list(pruned_meta[o.relation]) + list(selfjoin_added[o.relation])
        for o in psj.occurrences
    ]

    if config.streaming_product:
        # Hot path: the dangling check and the provenance-aware dedupe
        # run inside the combination loop, so rows Section 4.1 would
        # prune are never materialized (and never metered).
        product = meta_product_streaming(
            columns, operands, arities, store, defining,
            padding=config.product_padding, budget=budget,
            excuse=excuse if config.existential_closure else None,
            prune=config.prune_dangling,
        )
        current = product
    else:
        product = meta_product(
            columns, operands, arities, store,
            padding=config.product_padding, budget=budget,
        )
        current = product
        if config.prune_dangling:
            current = prune_dangling(
                current, defining,
                excuse if config.existential_closure else None,
                budget=budget,
            )

    derivation = MaskDerivation(
        admissible_views=admissible,
        pruned_meta=pruned_meta,
        selfjoin_added=selfjoin_added,
        raw_product=product.deduped(),  # display form, provenance-blind
        pruned_product=product,
        streamed=config.streaming_product,
    )

    current = prune_unsatisfiable(current, budget=budget)
    if config.dedupe:
        current = current.deduped()
    derivation.pruned_product = current
    if budget is not None:
        budget.check_deadline("prune")

    fresh = FreshVars()
    discrete = [c.domain.discrete for c in columns]
    for step in group_conditions(psj.conditions, discrete):
        current = meta_select(current, step, config, fresh, budget=budget)
        derivation.after_selections.append((step, current))

    current = meta_project(current, psj.output, budget=budget)
    derivation.projected = current

    derivation.mask = cleanup(current, budget=budget)
    return derivation
