"""The soundness-preserving degradation ladder.

Under overload or internal failure the mask may shrink but must never
grow (cf. Bertossi & Li's secrecy views: degradation must only ever
*hide* more).  Each rung of the ladder disables one more refinement, so
by the ablation-dominance property (every refinement only ever widens
the mask; ``tests/property/test_engine_properties.py`` and
``tests/property/test_degradation_ladder.py`` enforce it) rung N+1
delivers a subset of rung N:

    0  ``full``         the configuration as given
    1  ``no-selfjoins`` drop refinement 3 (and the existential-closure
                        extension) — the combinatorial closures go away
    2  ``no-padding``   additionally drop refinement 1 — products stop
                        multiplying meta-tuples with padded rows
    3  ``base``         additionally drop the four-case selection
                        refinement: Definitions 1-3, literally
    4  ``empty``        no derivation at all; the mask is empty and
                        nothing is delivered (fail closed)

:func:`derive_mask_resilient` walks the ladder: budget exhaustion
(:class:`~repro.errors.BudgetExceededError`,
:class:`~repro.errors.DerivationTimeout`) always drops to the next
rung; any other internal failure drops too when the engine is
configured fail-closed, and propagates in dev mode
(``fail_closed=False``).  Every rung gets a fresh budget, so the worst
case is ``len(ladder) * deadline`` wall time.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.algebra.expression import PSJQuery
from repro.algebra.schema import DatabaseSchema
from repro.config import EngineConfig
from repro.errors import BudgetExceededError, DerivationTimeout
from repro.meta.catalog import PermissionCatalog
from repro.meta.metatuple import MetaTuple
from repro.metaalgebra.budget import Budget
from repro.metaalgebra.plan import MaskDerivation, derive_mask
from repro.metaalgebra.prune import ExcusePredicate
from repro.metaalgebra.table import MaskTable

#: Rung names, indexed by ``degradation_level``.
DEGRADATION_LEVELS: Tuple[str, ...] = (
    "full", "no-selfjoins", "no-padding", "base", "empty",
)

#: The fail-closed floor: an empty mask, delivered without derivation.
EMPTY_LEVEL = len(DEGRADATION_LEVELS) - 1


def rung_config(config: EngineConfig, level: int) -> Optional[EngineConfig]:
    """The configuration of ladder rung ``level`` (None for ``empty``).

    Rungs only ever *disable* switches, never enable them — a base
    configuration that already runs without self-joins is unchanged by
    rung 1, so the subset chain holds for any starting point.
    """
    if not 0 <= level <= EMPTY_LEVEL:
        raise ValueError(f"no ladder rung {level}")
    if level == 0:
        return config
    if level == EMPTY_LEVEL:
        return None
    changes: Dict[str, bool] = {
        "self_joins": False, "existential_closure": False,
    }
    if level >= 2:
        changes["product_padding"] = False
    if level >= 3:
        changes["refine_selection"] = False
    return config.but(**changes)


def empty_derivation(psj: PSJQuery, schema: DatabaseSchema,
                     level: int = EMPTY_LEVEL,
                     reason: Optional[str] = None) -> MaskDerivation:
    """A derivation trace denoting the empty mask (nothing delivered)."""
    product_columns = psj.product_columns(schema)
    empty_product = MaskTable(product_columns, ())
    empty_mask = MaskTable(psj.output_columns(schema), ())
    return MaskDerivation(
        admissible_views=(),
        pruned_meta={},
        selfjoin_added={},
        raw_product=empty_product,
        pruned_product=empty_product,
        projected=empty_mask,
        mask=empty_mask,
        degradation_level=level,
        degradation_reason=reason,
    )


def derive_mask_resilient(
    psj: PSJQuery,
    schema: DatabaseSchema,
    catalog: PermissionCatalog,
    user: str,
    config: EngineConfig,
    excuse: Optional[ExcusePredicate] = None,
    selfjoin_pool: Optional[Dict[str, Tuple[MetaTuple, ...]]] = None,
    clock: Callable[[], float] = time.monotonic,
) -> MaskDerivation:
    """Derive the mask, degrading down the ladder instead of failing.

    Returns a derivation whose ``degradation_level`` records the rung
    that succeeded (``EMPTY_LEVEL`` when every rung failed).  Raises
    only in dev mode (``config.fail_closed`` False) — and then only for
    genuine faults, or for budget exhaustion when the ladder is
    disabled; with the ladder enabled, budget exhaustion always
    degrades, because it is defined behaviour rather than a failure.
    """
    levels = range(EMPTY_LEVEL if config.degradation_ladder else 1)
    reason: Optional[str] = None
    for level in levels:
        rung = rung_config(config, level)
        assert rung is not None
        budget = Budget.from_config(rung, clock)
        try:
            derivation = derive_mask(
                psj, schema, catalog, user, rung,
                excuse=excuse if rung.existential_closure else None,
                selfjoin_pool=selfjoin_pool if rung.self_joins else None,
                budget=budget,
            )
            derivation.degradation_level = level
            derivation.degradation_reason = reason
            return derivation
        except (BudgetExceededError, DerivationTimeout) as error:
            if not config.degradation_ladder and not config.fail_closed:
                raise
            reason = reason or f"{type(error).__name__}: {error}"
        except Exception as error:
            if not config.fail_closed:
                raise
            reason = reason or f"{type(error).__name__}: {error}"
    # Every rung failed (or was skipped): fail closed to the empty mask.
    return empty_derivation(psj, schema, reason=reason)
