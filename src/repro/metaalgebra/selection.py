"""The meta-relation selection (Definition 2 + Section 4.2 refinement).

Definition 2 selects meta-tuples whose referenced components are
starred and conjoins the query predicate lambda onto the component's
predicate mu.  The Section 4.2 refinement handles lambda case by case:

* contradiction — discard the meta-tuple;
* lambda implies mu — clear the field (more tuples survive later
  projections);
* mu implies lambda — retain unmodified;
* otherwise — represent mu AND lambda.

Soundness invariants enforced here:

* an unstarred referenced component drops the row (Definition 2's star
  rule; relaxable via ``require_star_for_selection=False`` only for the
  provably sound outcomes);
* a variable occurring in several cells of the row, or participating in
  variable-to-variable relations, is never cleared by a one-column
  predicate — clearing would silently widen the view by losing the
  equality/ordering linkage;
* equality predicates substitute constants through *every* occurrence
  of the variable and through the store, so the linkage is preserved
  in constant form;
* every modification ends with a satisfiability screen: provably
  contradictory rows are discarded.

The engine runs selections after the dangling-reference pruning, so
every variable in a row has all of its defining meta-tuples present —
the invariant the clearing rules rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.algebra.expression import AtomicCondition, Col, Const
from repro.algebra.types import Value
from repro.config import EngineConfig
from repro.meta.cell import MetaCell
from repro.metaalgebra.budget import Budget
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.testing.faults import maybe_fault
from repro.predicates.comparators import Comparator
from repro.predicates.implication import SelectionCase, classify
from repro.predicates.intervals import Interval
from repro.predicates.store import ConstraintStore


@dataclass(frozen=True)
class ColumnPredicate:
    """All of a query's constant comparisons on one column, as one
    composite predicate.

    The paper applies the query's qualification as a *single*
    conjunctive sigma, so a stored view of budgets [300k, 600k] probed
    with ``BUDGET >= 400,000 and BUDGET <= 500,000`` must see lambda =
    [400k, 500k] — which clears — rather than two half-bounded lambdas
    that each merely conjoin.  Grouping restores that behaviour.
    """

    index: int
    interval: Interval
    conditions: Tuple[AtomicCondition, ...]

    def render(self, labels: Sequence[str]) -> str:
        return " and ".join(c.render(labels) for c in self.conditions)


#: One unit of the selection phase: a column-to-column condition, or the
#: composite constant predicate on one column.
SelectionStep = Union[AtomicCondition, ColumnPredicate]


def group_conditions(
    conditions: Sequence[AtomicCondition],
    discrete_columns: Sequence[bool],
) -> List[SelectionStep]:
    """Fold the constant comparisons of each column into one step.

    Steps keep the order of first appearance; column-to-column
    conditions remain individual steps.
    """
    steps: List[SelectionStep] = []
    by_column: dict = {}
    for condition in conditions:
        lhs, rhs, op = condition.lhs, condition.rhs, condition.op
        if isinstance(lhs, Const) and isinstance(rhs, Col):
            lhs, rhs, op = rhs, lhs, op.flipped()
        if isinstance(lhs, Col) and isinstance(rhs, Const):
            index = lhs.index
            lam = Interval.from_comparison(
                op, rhs.value, discrete_columns[index]
            )
            if index in by_column:
                placeholder = by_column[index]
                by_column[index] = ColumnPredicate(
                    index,
                    placeholder.interval.intersect(lam),
                    placeholder.conditions + (condition,),
                )
            else:
                predicate = ColumnPredicate(index, lam, (condition,))
                by_column[index] = predicate
                steps.append(predicate)
        else:
            steps.append(condition)
    # Replace placeholders with their final accumulated versions.
    return [
        by_column[step.index] if isinstance(step, ColumnPredicate) else step
        for step in steps
    ]


class FreshVars:
    """Generator of query-introduced variable names (q1, q2, ...).

    The catalog names view variables x1, x2, ...; query-introduced
    variables use a distinct prefix so they can never collide.
    """

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def __call__(self) -> str:
        return f"q{next(self._counter)}"


def meta_select(
    table: MaskTable,
    step: SelectionStep,
    config: EngineConfig,
    fresh: Optional[Callable[[], str]] = None,
    budget: Optional[Budget] = None,
) -> MaskTable:
    """Apply one selection step to every row of ``table``."""
    maybe_fault("selection", budget)
    if budget is not None:
        budget.check_deadline("selection")
    fresh = fresh or FreshVars()
    selector = _Selector(table, step, config, fresh)
    rows = []
    for row in table.rows:
        if budget is not None:
            budget.tick("selection")
        selected = selector.select_row(row)
        if selected is not None and not selected.store.is_definitely_unsat():
            rows.append(selected)
    if budget is not None:
        budget.charge_rows(len(rows), "selection")
    return table.with_rows(rows)


class _Selector:
    def __init__(self, table: MaskTable, step: SelectionStep,
                 config: EngineConfig, fresh: Callable[[], str]) -> None:
        self.table = table
        self.step = step
        self.config = config
        self.fresh = fresh

    # -- helpers -------------------------------------------------------

    def _discrete(self, index: int) -> bool:
        return self.table.columns[index].domain.discrete

    def _mu_of(self, cell: MetaCell, store: ConstraintStore,
               index: int) -> Interval:
        """The stored predicate on ``cell``'s attribute."""
        if cell.is_constant:
            return Interval.point(cell.const_value, self._discrete(index))
        if cell.is_variable:
            return store.interval_for(cell.var_name)
        return Interval.top(self._discrete(index))

    @staticmethod
    def _clearable_var(row: MaskRow, var: str) -> bool:
        """May ``var``'s single cell be cleared without losing linkage?"""
        return (
            len(row.meta.var_positions(var)) == 1
            and not row.store.relations_of(var)
        )

    # -- dispatch -------------------------------------------------------

    def select_row(self, row: MaskRow) -> Optional[MaskRow]:
        step = self.step
        if isinstance(step, ColumnPredicate):
            return self._select_col_interval(row, step.index, step.interval)
        if isinstance(step.lhs, Col) and isinstance(step.rhs, Col):
            return self._select_col_col(
                row, step.lhs.index, step.op, step.rhs.index
            )
        if isinstance(step.lhs, Col):
            assert isinstance(step.rhs, Const)
            return self._select_col_const(
                row, step.lhs.index, step.op, step.rhs.value
            )
        # The compiler orients constants rightward, but accept both.
        assert isinstance(step.rhs, Col)
        assert isinstance(step.lhs, Const)
        return self._select_col_const(
            row, step.rhs.index, step.op.flipped(), step.lhs.value
        )

    # -- column-vs-constant ----------------------------------------------

    def _select_col_const(self, row: MaskRow, index: int, op: Comparator,
                          value: Value) -> Optional[MaskRow]:
        lam = Interval.from_comparison(op, value, self._discrete(index))
        return self._select_col_interval(row, index, lam)

    def _select_col_interval(self, row: MaskRow, index: int,
                             lam: Interval) -> Optional[MaskRow]:
        """One-column predicate lambda against the cell's mu.

        Star policy: Definition 2 only selects starred components, but
        two outcomes are provably sound without a star and the
        Section 4.2 case text sanctions them —

        * *mu implies lambda* (retain unmodified): the view's own
          selection already guarantees the query predicate, so the mask
          still denotes exactly the permitted view;
        * *mu equivalent to lambda* (clear): the answer enforces the
          predicate, so clearing loses nothing — this is what lets a
          view with an unprojected selection attribute (``where DOC =
          house``, DOC not in the target) survive the projection.

        Everything else on an unstarred cell drops the row: conjoining
        would create a restriction inexpressible over the permitted
        view, and clearing a strictly weaker mu would deliver a
        lambda-selected subset of the view — information the Theorem
        does not license (setting ``require_star_for_selection=False``
        enables that INGRES-flavoured behaviour for experiments).
        """
        cell = row.meta.cells[index]
        mu = self._mu_of(cell, row.store, index)

        if not self.config.refine_selection:
            if not cell.starred:
                return None
            return self._conjoin_interval(row, index, mu, lam)

        if mu.is_disjoint(lam):
            return None
        lam_implies_mu = lam.is_subset(mu)
        mu_implies_lam = mu.is_subset(lam)

        if cell.starred:
            if lam_implies_mu:
                return self._clear_cell(row, index)
            if mu_implies_lam:
                return row
            return self._conjoin_interval(row, index, mu, lam)

        # Unstarred component: only the provably sound outcomes.
        if mu_implies_lam and lam_implies_mu:
            return self._clear_cell(row, index)
        if mu_implies_lam:
            return row
        if lam_implies_mu and not self.config.require_star_for_selection:
            return self._clear_cell(row, index)
        return None

    def _clear_cell(self, row: MaskRow, index: int) -> Optional[MaskRow]:
        cell = row.meta.cells[index]
        if cell.is_blank:
            return row
        var = cell.var_name
        if var is None:
            # Constant cell: clearing is unconditionally safe.
            return MaskRow(row.meta.replace_cell(index, cell.cleared()),
                           row.store)
        if self._clearable_var(row, var):
            return MaskRow(row.meta.replace_cell(index, cell.cleared()),
                           row.store)
        # Clearing would break the variable's linkage to other cells or
        # relations; retaining unmodified is the sound fallback.
        return row

    def _conjoin_interval(self, row: MaskRow, index: int, mu: Interval,
                          lam: Interval) -> Optional[MaskRow]:
        """Definition 2's literal behaviour: represent mu AND lambda."""
        cell = row.meta.cells[index]

        if cell.is_constant:
            # mu AND lambda on a pinned value is statically decidable.
            if lam.contains(cell.const_value):
                return row
            return None

        if lam.is_point:
            return self._pin_cell(row, index, lam.the_point())

        if cell.is_blank:
            # Introduce a query variable carrying lambda.
            var = self.fresh()
            meta = row.meta.replace_cell(
                index, MetaCell.variable(var, cell.starred)
            )
            store = row.store.constrain_interval(var, lam)
            return MaskRow(meta, store)

        var = cell.var_name
        assert var is not None
        narrowed = mu.intersect(lam)
        if narrowed.is_empty():
            return None
        return MaskRow(row.meta, row.store.replace_interval(var, narrowed))

    def _pin_cell(self, row: MaskRow, index: int,
                  value: Value) -> Optional[MaskRow]:
        """Handle an equality with a constant: substitute throughout."""
        cell = row.meta.cells[index]
        if cell.is_constant:
            return row if cell.const_value == value else None
        if cell.is_blank:
            meta = row.meta.replace_cell(
                index, MetaCell.constant(value, cell.starred)
            )
            return MaskRow(meta, row.store)
        var = cell.var_name
        assert var is not None
        if not row.store.interval_for(var).contains(value):
            return None
        meta = row.meta.substitute_var(
            var, MetaCell.constant(value, cell.starred)
        )
        store = row.store.substitute(var, value)
        return MaskRow(meta, store)

    # -- column-vs-column ---------------------------------------------------

    def _select_col_col(self, row: MaskRow, left: int, op: Comparator,
                        right: int) -> Optional[MaskRow]:
        a, b = row.meta.cells[left], row.meta.cells[right]

        # Both constants: statically decidable, no representation is
        # needed, so stars are irrelevant (retain or discard).
        if a.is_constant and b.is_constant:
            if op.evaluate(a.const_value, b.const_value):
                return row
            return None

        # A constant on one side reduces to column-vs-constant on the
        # other; the one-column star policy applies there.
        if a.is_constant:
            return self._select_col_const(
                row, right, op.flipped(), a.const_value
            )
        if b.is_constant:
            return self._select_col_const(row, left, op, b.const_value)

        # Same variable on both sides: mu already relates the columns;
        # the outcomes are retain/clear/discard, all sound unstarred.
        if a.is_variable and b.is_variable and a.var_name == b.var_name:
            return self._select_same_var(row, left, op, right, a.var_name)

        # The remaining shapes modify the row (unify variables, copy
        # contents, add relations): representing lambda requires the
        # referenced components in the projection — Definition 2's rule,
        # and here it is a soundness requirement, not configuration.
        if not a.starred or not b.starred:
            return None

        if op is Comparator.EQ:
            return self._equate_cells(row, left, right)

        return self._relate_cells(row, left, op, right)

    def _select_same_var(self, row: MaskRow, left: int, op: Comparator,
                         right: int, var: str) -> Optional[MaskRow]:
        """Both cells hold the same variable: mu already implies equality."""
        if op is Comparator.EQ:
            if not self.config.refine_selection:
                return row  # mu AND lambda == mu
            # Clear both occurrences when the variable carries no other
            # information (Example 2's x1 and x2): lambda holds on every
            # answer tuple, so the pair adds nothing.
            positions = row.meta.var_positions(var)
            unconstrained = (
                row.store.interval_for(var).is_top
                and not row.store.relations_of(var)
            )
            if unconstrained and set(positions) == {left, right}:
                meta = row.meta.replace_cells({
                    left: row.meta.cells[left].cleared(),
                    right: row.meta.cells[right].cleared(),
                })
                return MaskRow(meta, row.store)
            return row
        if op in (Comparator.LE, Comparator.GE):
            return row  # x <= x is implied
        return None  # x < x or x != x is contradictory

    def _equate_cells(self, row: MaskRow, left: int,
                      right: int) -> Optional[MaskRow]:
        """lambda: col_left = col_right over blank/variable cells."""
        a, b = row.meta.cells[left], row.meta.cells[right]

        if a.is_blank and b.is_blank:
            if self.config.refine_selection:
                return row  # lambda holds on every answer tuple: clear
            var = self.fresh()
            meta = row.meta.replace_cells({
                left: MetaCell.variable(var, a.starred),
                right: MetaCell.variable(var, b.starred),
            })
            return MaskRow(meta, row.store)

        if a.is_blank or b.is_blank:
            blank_index = left if a.is_blank else right
            other = b if a.is_blank else a
            blank = row.meta.cells[blank_index]
            meta = row.meta.replace_cell(
                blank_index, MetaCell(other.content, blank.starred)
            )
            return MaskRow(meta, row.store)

        # Two distinct variables: unify.
        keep, drop = a.var_name, b.var_name
        assert keep is not None and drop is not None
        meta = row.meta.rename_var(drop, keep)
        store = row.store.unify(keep, drop)
        return MaskRow(meta, store)

    def _relate_cells(self, row: MaskRow, left: int, op: Comparator,
                      right: int) -> Optional[MaskRow]:
        """Order/inequality lambda between two blank/variable cells."""
        meta, store = row.meta, row.store

        def ensure_var(index: int) -> str:
            cell = meta.cells[index]
            name = cell.var_name
            if name is not None:
                return name
            return ""  # placeholder; replaced below

        left_var = ensure_var(left)
        right_var = ensure_var(right)

        updates = {}
        if not left_var:
            left_var = self.fresh()
            updates[left] = MetaCell.variable(
                left_var, meta.cells[left].starred
            )
        if not right_var:
            right_var = self.fresh()
            updates[right] = MetaCell.variable(
                right_var, meta.cells[right].starred
            )
        if updates:
            meta = meta.replace_cells(updates)

        if self.config.refine_selection and _store_implies(
            store, left_var, op, right_var
        ):
            return MaskRow(row.meta, row.store)  # mu implies lambda: retain

        store = store.relate(left_var, op, right_var)
        return MaskRow(meta, store)


def _store_implies(store: ConstraintStore, left: str, op: Comparator,
                   right: str) -> bool:
    """Conservatively decide whether the store implies ``left op right``."""
    a = store.interval_for(left).normalized()
    b = store.interval_for(right).normalized()
    if op is Comparator.NE:
        return a.is_disjoint(b)
    if op in (Comparator.LT, Comparator.LE):
        if a.hi is None or b.lo is None:
            return False
        if a.hi < b.lo:
            return True
        if a.hi == b.lo:
            strict = a.hi_strict or b.lo_strict
            return strict or op is Comparator.LE
        return False
    if op in (Comparator.GT, Comparator.GE):
        return _store_implies(store, right, op.flipped(), left)
    return False
