"""S6 — the extended meta-algebra (Section 4).

The product, selection and projection operators generalized to
meta-relations (Definitions 1-3), the three Section 4.2 refinements
(product padding, four-case selection, self-joins), pruning, and the
mask-derivation pipeline that mirrors the query's plan over the
meta-relations.
"""

from repro.metaalgebra.plan import MaskDerivation, derive_mask
from repro.metaalgebra.product import meta_product, meta_product_streaming
from repro.metaalgebra.projection import meta_project
from repro.metaalgebra.prune import (
    cleanup,
    prune_dangling,
    prune_invisible,
    prune_unsatisfiable,
)
from repro.metaalgebra.selection import FreshVars, meta_select
from repro.metaalgebra.selfjoin import combine, selfjoin_closure
from repro.metaalgebra.table import MaskRow, MaskTable, mask_row

__all__ = [
    "FreshVars",
    "MaskDerivation",
    "MaskRow",
    "MaskTable",
    "cleanup",
    "combine",
    "derive_mask",
    "mask_row",
    "meta_product",
    "meta_product_streaming",
    "meta_project",
    "meta_select",
    "prune_dangling",
    "prune_invisible",
    "prune_unsatisfiable",
    "selfjoin_closure",
]
