"""The self-join refinement (third refinement of Section 4.2).

"Let r and s be meta-tuples in relation R' that do not belong to the
same view.  Assume that the subviews defined by r and s can participate
in a lossless join (for example, both subviews include the key of this
relation)."  The combined meta-tuple authorizes the attributes of both
subviews for the tuples satisfying both selections — Example 3 combines
SAE ``(*, ⊔, *)`` with EST ``(*, x4*, ⊔)`` into ``(*, x4*, *)`` so that
Brown may see names, titles *and* salaries of same-title employees.

Implementation notes:

* Losslessness is checked via declared keys: both tuples must star
  every key attribute of the relation (the paper's "for example").
  Keyless relations produce no self-joins.
* Cell combination is conjunction of the two selections with the union
  of the projections: blanks absorb, equal constants merge, and
  conflicting constants cancel the pair.  Combinations that would
  require equating a variable with a constant or with another view's
  variable are skipped: the variable's meaning is anchored in its other
  defining meta-tuples, which a per-tuple substitution cannot reach
  soundly.
* Combination runs to a fixpoint (bounded by the config), so three
  pairwise-joinable views combine into one tuple; each combined tuple
  carries the union of view names and provenance, which keeps the
  dangling-reference pruning exact.

"Self-joins need not be generated for every query; once generated, they
should be stored with the original view definitions" — the engine
caches the closure per user and invalidates it on catalog changes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.algebra.schema import RelationSchema
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple, canonical_key
from repro.metaalgebra.budget import Budget
from repro.predicates.store import ConstraintStore
from repro.testing.faults import maybe_fault


def selfjoin_closure(
    schema: RelationSchema,
    tuples: Sequence[MetaTuple],
    store: ConstraintStore,
    max_rounds: int = 4,
    max_tuples: int = 64,
    budget: Optional[Budget] = None,
) -> Tuple[MetaTuple, ...]:
    """All combined meta-tuples derivable from ``tuples`` by self-joins.

    Returns only the *new* tuples (the originals are kept alongside by
    the caller).  The closure is truncated at ``max_tuples`` combined
    tuples — it is worst-case exponential in the number of
    pairwise-joinable views, and dropping combinations is always sound
    (the mask merely authorizes less).
    """
    maybe_fault("selfjoin", budget)
    if budget is not None:
        budget.check_deadline("selfjoin")
    key_positions = schema.key_indices()
    if not key_positions:
        return ()

    pool: List[MetaTuple] = list(tuples)
    # Provenance-aware keys: combinations built from different original
    # tuples must all survive (Example 3 needs both EST+SAE combos).
    seen = {canonical_key(t, store, include_provenance=True) for t in pool}
    added: List[MetaTuple] = []

    for _ in range(max_rounds):
        new_tuples: List[MetaTuple] = []
        for i, left in enumerate(pool):
            if len(added) + len(new_tuples) >= max_tuples:
                break
            for right in pool[i + 1:]:
                if budget is not None:
                    budget.tick("selfjoin")
                combined = combine(left, right, key_positions)
                if combined is None:
                    continue
                key = canonical_key(combined, store,
                                    include_provenance=True)
                if key not in seen:
                    seen.add(key)
                    new_tuples.append(combined)
                    if len(added) + len(new_tuples) >= max_tuples:
                        break
        if not new_tuples:
            break
        pool.extend(new_tuples)
        added.extend(new_tuples)
        if budget is not None:
            budget.charge_selfjoin(len(pool), "selfjoin")
        if len(added) >= max_tuples:
            break

    return tuple(added)


def combine(
    left: MetaTuple,
    right: MetaTuple,
    key_positions: Sequence[int],
) -> Optional[MetaTuple]:
    """Combine two meta-tuples per the self-join rule, or None.

    Preconditions checked here: disjoint view sets (the paper's "do not
    belong to the same view"), both tuples starring the key, and
    cell-wise combinability.
    """
    if left.views & right.views:
        return None
    for position in key_positions:
        if not left.cells[position].starred:
            return None
        if not right.cells[position].starred:
            return None

    cells: List[MetaCell] = []
    for a, b in zip(left.cells, right.cells):
        combined = _combine_cell(a, b)
        if combined is None:
            return None
        cells.append(combined)

    return MetaTuple(
        views=left.views | right.views,
        cells=tuple(cells),
        provenance=left.provenance | right.provenance,
    )


def _combine_cell(a: MetaCell, b: MetaCell) -> Optional[MetaCell]:
    starred = a.starred or b.starred
    if a.is_blank:
        return MetaCell(b.content, starred)
    if b.is_blank:
        return MetaCell(a.content, starred)
    if a.is_constant and b.is_constant:
        if a.const_value == b.const_value:
            return MetaCell(a.content, starred)
        return None  # contradictory selections: the join is empty
    # Variable against variable/constant would need substitution that
    # reaches the variable's other defining meta-tuples; skip soundly.
    return None
