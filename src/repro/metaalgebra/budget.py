"""Resource budgets for mask derivation.

The refinements are where derivation cost explodes: product padding
multiplies meta-tuples per product node, and the self-join closure is
worst-case exponential in the number of pairwise-joinable views.  A
:class:`Budget` makes those costs explicit — a cap on meta-tuples
materialized per operator node, a cap on the self-join pool a
derivation will consume, and a wall-time deadline — and is threaded
through the meta-algebra operators, which check it at their boundaries.

Exhaustion raises :class:`~repro.errors.BudgetExceededError` or
:class:`~repro.errors.DerivationTimeout`.  Neither ever reaches a
caller of ``authorize``: the degradation ladder
(``repro.metaalgebra.ladder``) catches both and re-derives at a
cheaper rung, so overload degrades the mask (soundly — it only ever
shrinks) instead of failing the request.

Budgets are off by default (``EngineConfig`` limits of 0); a derivation
without a budget passes ``None`` everywhere and pays nothing.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.config import EngineConfig
from repro.errors import BudgetExceededError, DerivationTimeout


class Budget:
    """Mutable per-derivation fuel: row caps and a deadline.

    One instance covers one derivation attempt (one ladder rung); the
    ladder issues a fresh budget per rung, so the worst case is
    ``len(ladder) * deadline`` wall time.

    Args:
        max_rows: cap on meta-tuples materialized by any single
            operator node (0 = unlimited).
        max_selfjoin_pool: cap on the per-relation self-join pool
            (originals plus closure) a derivation will consume
            (0 = unlimited).
        deadline_ms: wall-time limit for the derivation
            (0 = no deadline).
        max_stream_rows: cap on total rows one chunk-streamed answer
            may deliver (0 = unlimited) — the delivery-side budget,
            metered per chunk by ``AuthorizationEngine.
            authorize_stream`` rather than at derivation operators.
        clock: monotonic time source, replaceable for tests.
    """

    __slots__ = ("max_rows", "max_selfjoin_pool", "deadline_ms",
                 "max_stream_rows", "_clock", "_deadline", "_ticks")

    #: Deadline polling stride of :meth:`tick` (amortizes clock reads).
    CHECK_EVERY = 32

    def __init__(self, max_rows: int = 0, max_selfjoin_pool: int = 0,
                 deadline_ms: float = 0.0, max_stream_rows: int = 0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.max_rows = max_rows
        self.max_selfjoin_pool = max_selfjoin_pool
        self.deadline_ms = deadline_ms
        self.max_stream_rows = max_stream_rows
        self._clock = clock
        self._deadline: Optional[float] = (
            clock() + deadline_ms / 1000.0 if deadline_ms > 0 else None
        )
        self._ticks = 0

    @classmethod
    def from_config(cls, config: EngineConfig,
                    clock: Callable[[], float] = time.monotonic
                    ) -> Optional["Budget"]:
        """A budget for ``config``, or ``None`` when it sets no limits."""
        if (config.max_mask_rows <= 0
                and config.max_selfjoin_pool <= 0
                and config.derivation_deadline_ms <= 0
                and config.max_stream_rows <= 0):
            return None
        return cls(
            max_rows=config.max_mask_rows,
            max_selfjoin_pool=config.max_selfjoin_pool,
            deadline_ms=config.derivation_deadline_ms,
            max_stream_rows=config.max_stream_rows,
            clock=clock,
        )

    # ------------------------------------------------------------------
    # checks (called at operator boundaries)
    # ------------------------------------------------------------------

    def charge_rows(self, count: int, stage: str) -> None:
        """Fail if an operator node materialized more than ``max_rows``."""
        if self.max_rows and count > self.max_rows:
            raise BudgetExceededError("mask-rows", stage, count,
                                      self.max_rows)

    def charge_selfjoin(self, count: int, stage: str) -> None:
        """Fail if a self-join pool exceeds ``max_selfjoin_pool``."""
        if self.max_selfjoin_pool and count > self.max_selfjoin_pool:
            raise BudgetExceededError("selfjoin-pool", stage, count,
                                      self.max_selfjoin_pool)

    def charge_stream(self, total_rows: int, stage: str) -> None:
        """Fail once a streamed delivery exceeds ``max_stream_rows``.

        Called with the *cumulative* row count after each chunk:
        already-yielded chunks stand (they were within budget), the
        offending chunk is never delivered, and the engine ends the
        stream failed-closed.
        """
        if self.max_stream_rows and total_rows > self.max_stream_rows:
            raise BudgetExceededError("stream-rows", stage, total_rows,
                                      self.max_stream_rows)

    def check_deadline(self, stage: str) -> None:
        """Fail if the wall-time deadline has passed."""
        if self._deadline is not None and self._clock() > self._deadline:
            raise DerivationTimeout(stage, self.deadline_ms)

    def tick(self, stage: str) -> None:
        """Cheap per-iteration probe: polls the deadline every
        :data:`CHECK_EVERY` calls so inner loops stay clock-free."""
        self._ticks += 1
        if self._ticks % self.CHECK_EVERY == 0:
            self.check_deadline(stage)

    # ------------------------------------------------------------------
    # simulated time (fault injection)
    # ------------------------------------------------------------------

    def elapse(self, seconds: float) -> None:
        """Charge ``seconds`` of simulated wall time (a ``slow`` fault
        moves the deadline closer instead of actually sleeping)."""
        if self._deadline is not None:
            self._deadline -= seconds
