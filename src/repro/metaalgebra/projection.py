"""The meta-relation projection (Definition 3).

"The projection of R' that removes its i'th attribute ... If a_i is
blank (possibly suffixed with *), then the result includes the
meta-tuple with the component removed" — meta-tuples whose removed
component carries a constant or a variable are *dropped*: their
selection condition would no longer be expressible over the remaining
attributes ("projection requires the attribute it removes not to be in
the selection attributes of the meta-tuple").

This is why the Section 4.2 clearing refinement matters: cleared fields
are blanks, so refined selections let more meta-tuples survive the
final projection.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.metaalgebra.budget import Budget
from repro.metaalgebra.table import MaskRow, MaskTable
from repro.testing.faults import maybe_fault


def meta_project(table: MaskTable, keep: Sequence[int],
                 budget: Optional[Budget] = None) -> MaskTable:
    """Project ``table`` onto the columns at ``keep`` (in that order).

    Equivalent to removing every other attribute one at a time with
    Definition 3; the result is independent of removal order.
    """
    maybe_fault("projection", budget)
    if budget is not None:
        budget.check_deadline("projection")
    keep = tuple(keep)
    removed = [i for i in range(table.arity) if i not in set(keep)]
    columns = tuple(table.columns[i] for i in keep)

    rows = []
    for row in table.rows:
        if budget is not None:
            budget.tick("projection")
        if all(row.meta.cells[i].is_blank for i in removed):
            rows.append(MaskRow(row.meta.project(keep), row.store))
    if budget is not None:
        budget.charge_rows(len(rows), "projection")
    return MaskTable(columns, tuple(rows))
