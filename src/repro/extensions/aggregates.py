"""Views with aggregate functions (Section 6, extension 2).

"The current methods can be extended to handle ... views with aggregate
functions."  This module adds *aggregate views*: a conjunctive core
(group-by attributes plus one measured attribute) with an aggregate
function over the measure.  Granting an aggregate view permits the
**aggregated** relation — group keys and the aggregate value — without
permitting the underlying rows, the classic statistics-only access of
the security literature.

Authorization of an aggregate query is sound and conservative, via two
routes:

1. **Exact aggregate grant** — some granted aggregate view has the same
   function and an *equivalent* conjunctive core (decided by the
   containment checker, both directions).  Equivalence, not mere
   containment: aggregates over a strict subset are not derivable from
   aggregates over the whole (a SUM over Acme's projects says nothing
   about the SUM over the large Acme projects).
2. **Derivable from visible cells** — the user's ordinary (row-level)
   mask fully covers every group-by and measure cell of the core's
   answer; then the user could compute the aggregate from data already
   permitted, so delivering it grants nothing new.

Anything else is denied outright — aggregate answers cannot be
partially masked meaningfully.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.calculus.ast import Query, ViewDefinition
from repro.calculus.containment import are_equivalent
from repro.core.mask import MASKED
from repro.errors import AuthorizationError, SafetyError
from repro.lang.parser import parse_query, parse_view

if TYPE_CHECKING:  # avoid a circular import with repro.core.engine
    from repro.core.engine import AuthorizationEngine


class AggregateFunction(enum.Enum):
    """The aggregate functions supported."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"

    def apply(self, values: List) -> Union[int, float]:
        if self is AggregateFunction.COUNT:
            return len(values)
        if not values:
            raise AuthorizationError(
                f"{self.value} over an empty group is undefined"
            )
        if self is AggregateFunction.SUM:
            return sum(values)
        if self is AggregateFunction.MIN:
            return min(values)
        if self is AggregateFunction.MAX:
            return max(values)
        return sum(values) / len(values)

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AggregateSpec:
    """An aggregate over a conjunctive core.

    The core's target list must be the group-by attributes followed by
    exactly one measured attribute (the aggregate's input).  For COUNT
    the measure still identifies what is being counted.
    """

    core: Query
    function: AggregateFunction

    def __post_init__(self) -> None:
        if len(self.core.target) < 1:
            raise SafetyError("aggregate core needs a measured attribute")

    @property
    def group_width(self) -> int:
        return len(self.core.target) - 1

    def labels(self) -> Tuple[str, ...]:
        groups = tuple(
            ref.attribute for ref in self.core.target[:-1]
        )
        measure = self.core.target[-1].attribute
        return groups + (f"{self.function}({measure})",)


@dataclass(frozen=True)
class AggregateView:
    """A named, grantable aggregate permission."""

    name: str
    spec: AggregateSpec


@dataclass(frozen=True)
class AggregateAnswer:
    """The delivered aggregated relation."""

    labels: Tuple[str, ...]
    rows: Tuple[Tuple, ...]
    route: str  # "aggregate view NAME" or "derived from visible cells"

    def render(self) -> str:
        widths = [len(label) for label in self.labels]
        body = [tuple(str(v) for v in row) for row in self.rows]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        out = [line(self.labels),
               "-+-".join("-" * w for w in widths)]
        out.extend(line(row) for row in body)
        out.append(f"-- via {self.route}")
        return "\n".join(out)


class AggregateAuthorizer:
    """Grants and authorizes aggregate access on top of an engine."""

    def __init__(self, engine: "AuthorizationEngine") -> None:
        self.engine = engine
        self._views: Dict[str, AggregateView] = {}
        self._grants: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # definition and grants
    # ------------------------------------------------------------------

    def define(self, name: str, core: Union[Query, ViewDefinition, str],
               function: AggregateFunction) -> AggregateView:
        """Define an aggregate view over a conjunctive core."""
        if isinstance(core, str):
            parsed = parse_view(core) if core.lstrip().startswith("view") \
                else parse_query(core)
            core = parsed
        if isinstance(core, ViewDefinition):
            core = core.as_query()
        if name in self._views:
            raise SafetyError(f"aggregate view {name!r} already defined")
        view = AggregateView(name, AggregateSpec(core, function))
        self._views[name] = view
        return view

    def permit(self, name: str, user: str) -> None:
        if name not in self._views:
            raise SafetyError(f"unknown aggregate view {name!r}")
        granted = self._grants.setdefault(user, [])
        if name not in granted:
            granted.append(name)

    def revoke(self, name: str, user: str) -> None:
        granted = self._grants.get(user, [])
        if name in granted:
            granted.remove(name)

    def views_of(self, user: str) -> Tuple[str, ...]:
        return tuple(self._grants.get(user, ()))

    # ------------------------------------------------------------------
    # authorization
    # ------------------------------------------------------------------

    def authorize(self, user: str,
                  spec: AggregateSpec) -> AggregateAnswer:
        """Authorize and evaluate an aggregate request.

        Raises:
            AuthorizationError: when neither route applies.
        """
        route = self._matching_grant(user, spec)
        if route is None and not self._derivable_from_visible(user, spec):
            raise AuthorizationError(
                "aggregate request is neither granted exactly nor "
                "derivable from the user's visible cells"
            )
        rows = self._evaluate(spec)
        return AggregateAnswer(
            labels=spec.labels(),
            rows=rows,
            route=(f"aggregate view {route}" if route
                   else "derived from visible cells"),
        )

    def _matching_grant(self, user: str,
                        spec: AggregateSpec) -> Optional[str]:
        schema = self.engine.database.schema
        for name in self.views_of(user):
            view = self._views[name]
            if view.spec.function is not spec.function:
                continue
            if view.spec.group_width != spec.group_width:
                continue
            if are_equivalent(view.spec.core, spec.core, schema):
                return name
        return None

    def _derivable_from_visible(self, user: str,
                                spec: AggregateSpec) -> bool:
        """Every group/measure cell of the core answer is visible."""
        answer = self.engine.authorize(user, spec.core)
        if answer.answer.cardinality == 0:
            return True  # nothing to reveal
        return all(
            value is not MASKED
            for row in answer.delivered for value in row
        ) and len(answer.delivered) == answer.answer.cardinality

    def _evaluate(self, spec: AggregateSpec) -> Tuple[Tuple, ...]:
        from repro.algebra.optimize import evaluate_optimized
        from repro.calculus.to_algebra import compile_query

        plan = compile_query(spec.core, self.engine.database.schema)
        relation = evaluate_optimized(plan, self.engine.database)
        width = spec.group_width
        groups: Dict[Tuple, List] = {}
        for row in relation.rows:
            groups.setdefault(row[:width], []).append(row[width])
        return tuple(
            key + (spec.function.apply(values),)
            for key, values in sorted(groups.items(), key=lambda g: g[0])
        )
