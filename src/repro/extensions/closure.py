"""Existential-closure excuse for dangling references (extension).

Section 4.1 prunes every product row that references a meta-tuple
outside the row.  The paper's own EST example shows this is sometimes
too strict: EST's two EMPLOYEE' meta-tuples are identical, so a row
containing one of them satisfies the other *existentially* — any
employee tuple matching ``(*, x4*, ⊔)`` witnesses the second membership
subformula with the same binding of x4.

The excuse predicate implemented here keeps a dangling row when every
missing defining meta-tuple is *subsumed* by a tuple present in the
row: same relation, and cell-by-cell the missing tuple's content is
blank or identical (same constant, same variable) to the present one.
Under that condition the present segment's match is itself a witness
for the missing subformula, so the row's subview is contained in the
view as required.

This goes beyond the paper (which simply prunes); it is disabled by
default and switched on with ``EngineConfig(existential_closure=True)``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.algebra.expression import PSJQuery
from repro.algebra.schema import DatabaseSchema
from repro.meta.catalog import PermissionCatalog
from repro.meta.cell import MetaCell
from repro.meta.metatuple import MetaTuple, TupleId
from repro.metaalgebra.prune import ExcusePredicate
from repro.testing.faults import maybe_fault


def make_excuse(
    catalog: PermissionCatalog,
    admissible: Tuple[str, ...],
    psj: PSJQuery,
    schema: DatabaseSchema,
) -> ExcusePredicate:
    """Build the subsumption-based excuse predicate for one derivation."""
    maybe_fault("closure")
    # Index the original meta-tuples of the admissible views by id.
    originals: Dict[TupleId, Tuple[str, MetaTuple]] = {}
    for name in admissible:
        for relation, meta in catalog.view(name).tuples:
            (tuple_id,) = meta.provenance
            originals[tuple_id] = (relation, meta)

    # Occurrence segments of the product row: (relation, offset, width).
    segments: List[Tuple[str, int, int]] = []
    offset = 0
    for occ in psj.occurrences:
        width = schema.get(occ.relation).arity
        segments.append((occ.relation, offset, width))
        offset += width

    def excuse(row: MetaTuple, missing_id: TupleId) -> bool:
        entry = originals.get(missing_id)
        if entry is None:
            return False
        relation, missing = entry
        for seg_relation, seg_offset, seg_width in segments:
            if seg_relation != relation:
                continue
            segment = row.cells[seg_offset:seg_offset + seg_width]
            if _subsumes(segment, missing):
                return True
        return False

    return excuse


def _subsumes(segment: Sequence[MetaCell], missing: MetaTuple) -> bool:
    """Is ``missing``'s selection implied, cell for cell, by ``segment``?

    The missing tuple's cell must be blank or carry exactly the content
    of the present cell (stars are irrelevant: subsumption concerns the
    selection, not the projection).
    """
    for present_cell, missing_cell in zip(segment, missing.cells):
        if missing_cell.is_blank:
            continue
        if missing_cell.content != present_cell.content:
            return False
    return True
