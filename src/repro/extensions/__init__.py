"""S11 — extensions sketched in the paper's Section 6.

* :mod:`repro.extensions.updates` — update permissions (insert, delete,
  modify) layered on retrieval masks.
* :mod:`repro.extensions.disjunction` — views with disjunctions.
* :mod:`repro.extensions.closure` — existential-closure excuse for the
  dangling-reference pruning.
"""

from repro.extensions.aggregates import (
    AggregateAnswer,
    AggregateAuthorizer,
    AggregateFunction,
    AggregateSpec,
    AggregateView,
)
from repro.extensions.closure import make_excuse
from repro.extensions.disjunction import (
    DisjunctiveView,
    define_disjunctive_view,
    permit_disjunctive,
    revoke_disjunctive,
)
from repro.extensions.updates import UpdateAuthorizer, UpdateDecision

__all__ = [
    "AggregateAnswer",
    "AggregateAuthorizer",
    "AggregateFunction",
    "AggregateSpec",
    "AggregateView",
    "DisjunctiveView",
    "UpdateAuthorizer",
    "UpdateDecision",
    "define_disjunctive_view",
    "make_excuse",
    "permit_disjunctive",
    "revoke_disjunctive",
]
