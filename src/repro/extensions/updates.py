"""Update permissions (Section 6, extension 1).

"Currently, the model incorporates only retrieval permissions.  We see
no difficulty in extending it to incorporate update permissions, such
as insert, delete and modify."  This module is that extension, layered
on retrieval masks with a conservative reading:

* **insert** — the user may insert a row into R iff the mask for
  ``retrieve R.*`` would make *every* cell of the hypothetical row
  visible: inserting a row one could not fully see would let the user
  both fabricate and probe data outside their permissions.
* **delete** — the user may delete exactly the rows of R they can see
  in full; a strict mode refuses the statement when its qualification
  also matches rows outside the user's view.
* **modify** — delete-visibility of the old row plus insert-visibility
  of the new row.

The paper's own caveat stands and is inherited: propagating *view*
updates to base relations is unsolvable in general; this extension
authorizes updates addressed directly at base relations, which is the
paper's usage model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.algebra.relation import Row
from repro.calculus.ast import AttrRef, Condition, Query
from repro.core.mask import Mask
from repro.errors import AuthorizationError

if TYPE_CHECKING:  # avoid a circular import with repro.core.engine
    from repro.core.engine import AuthorizationEngine


@dataclass(frozen=True)
class UpdateDecision:
    """The outcome of an update request."""

    allowed: bool
    affected: Tuple[Row, ...]
    reason: str


class UpdateAuthorizer:
    """Insert/delete/modify authorization over an engine's masks."""

    def __init__(self, engine: "AuthorizationEngine", strict: bool = True) -> None:
        self.engine = engine
        #: In strict mode a delete/modify whose qualification matches
        #: any row the user cannot fully see is refused outright; in
        #: lenient mode it silently affects only the visible rows.
        self.strict = strict

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _full_row_mask(self, user: str, relation: str,
                       conditions: Sequence[Condition] = ()) -> Mask:
        schema = self.engine.database.schema.get(relation)
        target = tuple(
            AttrRef(relation, name) for name in schema.attribute_names
        )
        derivation = self.engine.derive(
            user, Query(target, tuple(conditions))
        )
        assert derivation.mask is not None
        return Mask.from_table(derivation.mask)

    def _fully_visible(self, mask: Mask, row: Row, arity: int) -> bool:
        return len(mask.visible_positions(row)) == arity

    # ------------------------------------------------------------------
    # insert
    # ------------------------------------------------------------------

    def check_insert(self, user: str, relation: str,
                     row: Row) -> UpdateDecision:
        """May ``user`` insert ``row`` into ``relation``?"""
        schema = self.engine.database.schema.get(relation)
        mask = self._full_row_mask(user, relation)
        if self._fully_visible(mask, tuple(row), schema.arity):
            return UpdateDecision(True, (tuple(row),),
                                  "row lies within the permitted views")
        return UpdateDecision(
            False, (),
            "the row is not fully covered by the user's views",
        )

    def insert(self, user: str, relation: str, row: Row) -> None:
        """Insert after authorization.

        Raises:
            AuthorizationError: when the insert is not permitted.
        """
        decision = self.check_insert(user, relation, row)
        if not decision.allowed:
            raise AuthorizationError(
                f"insert into {relation} denied: {decision.reason}"
            )
        self.engine.database.insert(relation, tuple(row))

    # ------------------------------------------------------------------
    # delete
    # ------------------------------------------------------------------

    def check_delete(self, user: str, relation: str,
                     conditions: Sequence[Condition] = ()) -> UpdateDecision:
        """Which rows matching ``conditions`` may ``user`` delete?"""
        schema = self.engine.database.schema.get(relation)
        target = tuple(
            AttrRef(relation, name) for name in schema.attribute_names
        )
        answer = self.engine.authorize(
            user, Query(target, tuple(conditions))
        )
        mask = answer.mask
        visible: List[Row] = []
        hidden = 0
        for row in answer.answer.rows:
            if self._fully_visible(mask, row, schema.arity):
                visible.append(row)
            else:
                hidden += 1
        if hidden and self.strict:
            return UpdateDecision(
                False, (),
                f"qualification matches {hidden} row(s) outside the "
                "user's views (strict mode refuses)",
            )
        return UpdateDecision(
            True, tuple(visible),
            "deleting the fully visible rows",
        )

    def delete(self, user: str, relation: str,
               conditions: Sequence[Condition] = ()) -> int:
        """Delete after authorization; returns rows removed.

        Raises:
            AuthorizationError: in strict mode, when the qualification
                reaches beyond the user's views.
        """
        decision = self.check_delete(user, relation, conditions)
        if not decision.allowed:
            raise AuthorizationError(
                f"delete from {relation} denied: {decision.reason}"
            )
        return self.engine.database.delete(relation, decision.affected)

    # ------------------------------------------------------------------
    # modify
    # ------------------------------------------------------------------

    def check_modify(self, user: str, relation: str,
                     conditions: Sequence[Condition],
                     updates: Dict[str, object]) -> UpdateDecision:
        """May ``user`` apply ``updates`` to the rows matching
        ``conditions``?"""
        schema = self.engine.database.schema.get(relation)
        delete_decision = self.check_delete(user, relation, conditions)
        if not delete_decision.allowed:
            return delete_decision

        indices = {
            name: schema.index_of(name) for name in updates
        }
        insert_mask = self._full_row_mask(user, relation)
        new_rows: List[Row] = []
        for row in delete_decision.affected:
            cells = list(row)
            for name, value in updates.items():
                cells[indices[name]] = value
            new_row = tuple(cells)
            if not self._fully_visible(insert_mask, new_row, schema.arity):
                return UpdateDecision(
                    False, (),
                    "a modified row would leave the user's views",
                )
            new_rows.append(new_row)
        return UpdateDecision(True, tuple(new_rows),
                              "old and new rows both within the views")

    def modify(self, user: str, relation: str,
               conditions: Sequence[Condition],
               updates: Dict[str, object]) -> int:
        """Modify after authorization; returns rows changed.

        Raises:
            AuthorizationError: when either side of the modification
                leaves the user's views.
        """
        decision = self.check_modify(user, relation, conditions, updates)
        if not decision.allowed:
            raise AuthorizationError(
                f"modify {relation} denied: {decision.reason}"
            )
        old = self.check_delete(user, relation, conditions).affected
        removed = self.engine.database.delete(relation, old)
        for row in decision.affected:
            self.engine.database.insert(relation, row)
        return removed
