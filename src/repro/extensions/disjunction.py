"""Views with disjunctions (Section 6, extension 2).

"This restriction can be relaxed in several ways.  For example, the
current methods can be extended to handle views with disjunctions."

A disjunctive view is a union of conjunctive *branches* over the same
target shape.  The extension encodes each branch as a separate
conjunctive view (sharing a family name) and grants them together.
Soundness: every branch ``sigma_Pi`` is itself a view of the union
``sigma_(P1 or P2 or ...)`` — selecting ``Pi`` over the union yields
exactly the branch, provided the branch's selection attributes are
projected (the same "include the selection attributes" advice the
paper gives for conjunctive views).  Masks therefore derive branch by
branch through the unmodified engine, and their union is the
disjunctive permission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.calculus.ast import ViewDefinition
from repro.errors import SafetyError
from repro.lang.parser import parse_view
from repro.meta.catalog import PermissionCatalog


@dataclass(frozen=True)
class DisjunctiveView:
    """A named union of conjunctive branches."""

    name: str
    branch_names: Tuple[str, ...]

    @property
    def arity(self) -> int:
        return len(self.branch_names)


def define_disjunctive_view(
    catalog: PermissionCatalog,
    name: str,
    branches: Sequence[Union[ViewDefinition, str]],
) -> DisjunctiveView:
    """Define a disjunctive view as a family of conjunctive branches.

    Branch views are registered as ``NAME#1``, ``NAME#2``, ... and must
    share the same target shape (same attribute labels, in order) —
    a union of differently-shaped relations is not a view.

    Raises:
        SafetyError: when branches disagree on the target shape.
    """
    parsed: List[ViewDefinition] = []
    for branch in branches:
        if isinstance(branch, str):
            branch = parse_view(branch)
        parsed.append(branch)
    if not parsed:
        raise SafetyError("a disjunctive view needs at least one branch")

    shapes = {
        tuple(ref.attribute for ref in branch.target) for branch in parsed
    }
    if len(shapes) != 1:
        raise SafetyError(
            f"branches of {name!r} disagree on the target shape: {shapes}"
        )

    branch_names = []
    for i, branch in enumerate(parsed, start=1):
        branch_name = f"{name}#{i}"
        catalog.define_view(ViewDefinition(
            branch_name, branch.target, branch.conditions
        ))
        branch_names.append(branch_name)
    return DisjunctiveView(name, tuple(branch_names))


def permit_disjunctive(catalog: PermissionCatalog, view: DisjunctiveView,
                       user: str) -> None:
    """Grant every branch of ``view`` to ``user``."""
    for branch_name in view.branch_names:
        catalog.permit(branch_name, user)


def revoke_disjunctive(catalog: PermissionCatalog, view: DisjunctiveView,
                       user: str) -> None:
    """Withdraw every branch of ``view`` from ``user``."""
    for branch_name in view.branch_names:
        catalog.revoke(branch_name, user)
