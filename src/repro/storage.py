"""Persistence: save and load databases and permission catalogs.

A deployment of the model needs its schema, instances, view definitions
and grants to survive restarts.  This module serializes all four to a
single JSON document:

* schemas as (name, attribute, domain, key) records;
* instances as row arrays;
* views as their *surface statements* — the language layer round-trips
  exactly, so a reloaded catalog encodes to identical meta-relations
  (variable numbering included, because definition order is preserved);
* grants as (user, view) pairs in grant order.

``dump``/``load`` work on file paths or file objects; ``dumps``/``loads``
on strings.

**Durability.** Writing to a path is *atomic*: the document goes to a
temporary file in the target directory, is fsynced, and only then
renamed over the destination (``os.replace``).  A crash mid-write — the
kill-mid-write test in ``tests/test_storage_resilience.py`` simulates
one with the ``storage.fsync`` fault site — leaves the previous
snapshot intact; there is never a moment where the destination holds a
truncated document.  Loading validates before it builds: a damaged or
alien file raises :class:`~repro.errors.SnapshotError` rather than
producing a half-restored catalog.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import IO, Dict, List, Tuple, Union

from repro.algebra.database import Database, build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import domain_named
from repro.errors import SnapshotError
from repro.meta.catalog import PermissionCatalog
from repro.testing.faults import maybe_fault

#: Format marker; bump on incompatible layout changes.
FORMAT = "repro-authdb-v1"


def snapshot(database: Database,
             catalog: PermissionCatalog) -> Dict:
    """The JSON-ready representation of a database + catalog pair."""
    relations = []
    for schema in database.schema:
        relations.append({
            "name": schema.name,
            "attributes": [
                {"name": a.name, "domain": a.domain.name}
                for a in schema.attributes
            ],
            "key": list(schema.key),
            "rows": [list(row) for row in database.instance(schema.name)],
        })
    views = [
        str(catalog.view(name).definition)
        for name in catalog.view_names()
    ]
    grants = [
        [user, view] for user, view in catalog.permission_rows()
    ]
    return {
        "format": FORMAT,
        "relations": relations,
        "views": views,
        "grants": grants,
    }


def _validate(document: object) -> Dict:
    """Shape-check a snapshot document before rebuilding from it."""
    if not isinstance(document, dict):
        raise SnapshotError(
            f"snapshot must be a JSON object, got "
            f"{type(document).__name__}"
        )
    if document.get("format") != FORMAT:
        raise SnapshotError(
            f"unsupported snapshot format {document.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    relations = document.get("relations")
    if not isinstance(relations, list):
        raise SnapshotError("snapshot 'relations' must be a list")
    for record in relations:
        if not isinstance(record, dict) or "name" not in record \
                or "attributes" not in record:
            raise SnapshotError(
                "each relation record needs 'name' and 'attributes'"
            )
    views = document.get("views", [])
    if not isinstance(views, list) or \
            not all(isinstance(v, str) for v in views):
        raise SnapshotError("snapshot 'views' must be a list of strings")
    grants = document.get("grants", [])
    if not isinstance(grants, list) or not all(
        isinstance(pair, (list, tuple)) and len(pair) == 2
        for pair in grants
    ):
        raise SnapshotError(
            "snapshot 'grants' must be a list of [user, view] pairs"
        )
    return document


def restore(document: Dict) -> Tuple[Database, PermissionCatalog]:
    """Rebuild a database + catalog pair from :func:`snapshot` output.

    Raises:
        SnapshotError: for unknown formats or malformed documents
            (a subclass of :class:`~repro.errors.ReproError`, so
            existing ``except ReproError`` handlers keep working).
    """
    document = _validate(document)
    try:
        schemas = []
        instances: Dict[str, List[tuple]] = {}
        for record in document["relations"]:
            schemas.append(make_schema(
                record["name"],
                [(a["name"], domain_named(a["domain"]))
                 for a in record["attributes"]],
                key=record.get("key", []),
            ))
            instances[record["name"]] = [
                tuple(row) for row in record.get("rows", [])
            ]
        database = build_database(schemas, instances)
        catalog = PermissionCatalog(database.schema)
        for statement in document.get("views", []):
            catalog.define_view(statement)
        for user, view in document.get("grants", []):
            catalog.permit(view, user)
        return database, catalog
    except (KeyError, TypeError) as error:
        raise SnapshotError(f"malformed snapshot: {error}") from error


def dumps(database: Database, catalog: PermissionCatalog,
          indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(snapshot(database, catalog), indent=indent)


def loads(text: str) -> Tuple[Database, PermissionCatalog]:
    """Deserialize from a JSON string.

    Raises:
        SnapshotError: when ``text`` is not valid JSON or is not a
            well-formed snapshot document.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise SnapshotError(f"snapshot is not valid JSON: {error}") \
            from error
    return restore(document)


def dump(database: Database, catalog: PermissionCatalog,
         target: Union[str, Path, IO[str]]) -> None:
    """Serialize to a file path or open file object.

    Path targets are written atomically: the text lands in a temporary
    file in the same directory, is flushed and fsynced, and is then
    renamed over ``target``.  An exception anywhere before the rename
    (including a simulated crash via the ``storage.fsync`` fault site)
    leaves any existing file at ``target`` untouched and removes the
    temporary.  File-object targets are written directly — atomicity is
    the caller's business there.
    """
    maybe_fault("storage.write")
    text = dumps(database, catalog)
    if not isinstance(target, (str, Path)):
        target.write(text)
        return
    path = Path(target)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            maybe_fault("storage.fsync")
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load(source: Union[str, Path, IO[str]]
         ) -> Tuple[Database, PermissionCatalog]:
    """Deserialize from a file path or open file object.

    Raises:
        SnapshotError: for damaged or alien snapshot content.
        OSError: when the path cannot be read at all.
    """
    maybe_fault("storage.read")
    if not isinstance(source, (str, Path)):
        return loads(source.read())
    return loads(Path(source).read_text(encoding="utf-8"))
