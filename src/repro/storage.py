"""Persistence: save and load databases and permission catalogs.

A deployment of the model needs its schema, instances, view definitions
and grants to survive restarts.  This module serializes all four to a
single JSON document:

* schemas as (name, attribute, domain, key) records;
* instances as row arrays;
* views as their *surface statements* — the language layer round-trips
  exactly, so a reloaded catalog encodes to identical meta-relations
  (variable numbering included, because definition order is preserved);
* grants as (user, view) pairs in grant order.

``dump``/``load`` work on file paths or file objects; ``dumps``/``loads``
on strings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, List, Tuple, Union

from repro.algebra.database import Database, build_database
from repro.algebra.schema import make_schema
from repro.algebra.types import domain_named
from repro.errors import ReproError
from repro.meta.catalog import PermissionCatalog

#: Format marker; bump on incompatible layout changes.
FORMAT = "repro-authdb-v1"


def snapshot(database: Database,
             catalog: PermissionCatalog) -> Dict:
    """The JSON-ready representation of a database + catalog pair."""
    relations = []
    for schema in database.schema:
        relations.append({
            "name": schema.name,
            "attributes": [
                {"name": a.name, "domain": a.domain.name}
                for a in schema.attributes
            ],
            "key": list(schema.key),
            "rows": [list(row) for row in database.instance(schema.name)],
        })
    views = [
        str(catalog.view(name).definition)
        for name in catalog.view_names()
    ]
    grants = [
        [user, view] for user, view in catalog.permission_rows()
    ]
    return {
        "format": FORMAT,
        "relations": relations,
        "views": views,
        "grants": grants,
    }


def restore(document: Dict) -> Tuple[Database, PermissionCatalog]:
    """Rebuild a database + catalog pair from :func:`snapshot` output.

    Raises:
        ReproError: for unknown formats or malformed documents.
    """
    if document.get("format") != FORMAT:
        raise ReproError(
            f"unsupported snapshot format {document.get('format')!r}; "
            f"expected {FORMAT!r}"
        )
    try:
        schemas = []
        instances: Dict[str, List[tuple]] = {}
        for record in document["relations"]:
            schemas.append(make_schema(
                record["name"],
                [(a["name"], domain_named(a["domain"]))
                 for a in record["attributes"]],
                key=record.get("key", []),
            ))
            instances[record["name"]] = [
                tuple(row) for row in record.get("rows", [])
            ]
        database = build_database(schemas, instances)
        catalog = PermissionCatalog(database.schema)
        for statement in document.get("views", []):
            catalog.define_view(statement)
        for user, view in document.get("grants", []):
            catalog.permit(view, user)
        return database, catalog
    except (KeyError, TypeError) as error:
        raise ReproError(f"malformed snapshot: {error}") from error


def dumps(database: Database, catalog: PermissionCatalog,
          indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(snapshot(database, catalog), indent=indent)


def loads(text: str) -> Tuple[Database, PermissionCatalog]:
    """Deserialize from a JSON string."""
    return restore(json.loads(text))


def dump(database: Database, catalog: PermissionCatalog,
         target: Union[str, Path, IO[str]]) -> None:
    """Serialize to a file path or open file object."""
    text = dumps(database, catalog)
    if hasattr(target, "write"):
        target.write(text)  # type: ignore[union-attr]
    else:
        Path(target).write_text(text, encoding="utf-8")


def load(source: Union[str, Path, IO[str]]
         ) -> Tuple[Database, PermissionCatalog]:
    """Deserialize from a file path or open file object."""
    if hasattr(source, "read"):
        return loads(source.read())  # type: ignore[union-attr]
    return loads(Path(source).read_text(encoding="utf-8"))
